//! Serving demo: closed-loop per-backend sweeps, the latency-model
//! rank-order check, the SLO-aware tiered overload sweep, the multi-lane
//! mixed-traffic comparison, and the open-loop saturation sweep.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin serve_demo [-- --quick]
//! ```
//!
//! Five sections:
//!
//! 1. **Per-backend sweep.** For every [`BackendKind`] the demo measures
//!    offline batch capacity (images/s through a plain `Engine`), then
//!    sweeps arrival rates at fixed fractions of that capacity. The
//!    generator paces submissions on an absolute schedule against a queue
//!    sized to the whole run, so `offered` reaches `target` at every rate
//!    (asserted) — overload shows up as latency, not as a throttled
//!    generator. **Zero requests are ever dropped**, asserted per run, and
//!    every served response is asserted bitwise identical to
//!    `Engine::infer_batch` on the same image.
//! 2. **Latency models vs. measured.** Each backend's offline run feeds a
//!    `MeasuredEwma` whose prior is the `heatvit-fpga` cycle model. The
//!    demo prints the raw FPGA-prior prediction, the warmed EWMA
//!    prediction, and the measured per-image time side by side, and
//!    **asserts** that the warmed model rank-orders all five backends
//!    exactly as measured. (The raw prior ranks *accelerator* latency —
//!    int8 packing wins cycles on DSPs but loses host wall-clock — so its
//!    agreement is reported, not asserted.) The EWMA is then *calibrated*
//!    per (variant, batch-size) bucket — min-of-3 timings of each backend
//!    at every batch size admission will see — and the calibrated model
//!    must predict held-out re-measurements of every bucket within 10%
//!    mean error (**asserted**; the unbucketed model sat at 17–20%).
//! 3. **SLO-aware tiered overload sweep.** One tiered server over the
//!    dense → static-pruned → adaptive-pruned ladder, predictive admission
//!    on, driven by an 80/20 Normal/High mix at 1× and 2.5× of dense
//!    capacity. High is pinned to dense and must finish with **zero sheds
//!    and zero deadline misses** (asserted); Normal degrades down the
//!    keep-rate ladder under overload (asserted). The under-load
//!    predicted-vs-measured admission error is reported per overload
//!    (one-core contention makes any single run noisy, so the asserted
//!    accuracy gate is the held-out bucket error of section 2).
//! 4. **Multi-lane mixed traffic.** A float-dense + int8-dense ladder
//!    served at 1 and 2 lanes. High pins to the dense level (home lane 0);
//!    Normal's budget is deliberately unmeetable at every level, so with
//!    shedding off admission deterministically lands it on the int8 level
//!    (home lane 1) — float and int8 traffic batch and execute on their
//!    own lanes instead of serializing on one batcher. Prints aggregate
//!    throughput per lane count, per-lane served/stolen/queue-hwm rows,
//!    and an honest note on whether this host's core count lets two lanes
//!    actually run in parallel.
//! 5. **Open-loop saturation sweep.** The tiered SLO ladder on two lanes,
//!    driven *open-loop* (`try_submit`, never blocks: a full queue or an
//!    admission shed drops at the door) at 0.5×–4× of dense capacity.
//!    Emits the offered-rate vs served-rate / p95 / shed-rate curve and
//!    asserts High traffic is never shed **and** never refused for queue
//!    space at any swept rate.
//!
//! `--quick` shrinks the request count and sweeps for CI smoke runs;
//! `HEATVIT_SERVE_REQUESTS` overrides the per-run request count outright.
//! `--json <path>` additionally writes the sweeps as a machine-readable
//! report (`runs` one object per backend × rate, `slo_runs` one object per
//! overload × SLO class, `lane_runs` one object per lane count, `open_loop`
//! one object per rate, `telemetry` the 2-lane run's registry snapshot) —
//! the committed `BENCH_serve.json` at the repo root is produced this way,
//! through the same `json::Emitter` pipeline as `run_all`.
//!
//! Every SLO and lane run also asserts the telemetry redesign's honesty
//! gate — per-class p95 and shed counts read from the registry snapshot
//! match the printed `ServeReport` table bitwise — and the demo ends by
//! printing the 2-lane run's Prometheus-style exposition (CI greps it for
//! nonzero admission totals and the per-lane served lines).

use heatvit::telemetry::{render_prometheus, Registry, Snapshot};
use heatvit::{
    rank_by_predicted, Backend, BackendKind, CostProfile, Engine, InferenceModel, LatencyModel,
    MeasuredEwma,
};
use heatvit_bench::json::{self, Emitter, JsonObject};
use heatvit_bench::{build_backend, synthetic_batch};
use heatvit_fpga::FpgaCycleModel;
use heatvit_serve::metrics::names;
use heatvit_serve::{
    InferRequest, LaneCount, Priority, ServeConfig, Server, SloPolicy, SubmitError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinct images cycled by the generator (and the parity reference).
const IMAGE_POOL: usize = 16;
const DEFAULT_REQUESTS: usize = 96;
const QUICK_REQUESTS: usize = 32;
/// Arrival-rate sweep as fractions of measured offline batch capacity.
const SWEEP: [f64; 3] = [0.25, 0.5, 1.0];
const QUICK_SWEEP: [f64; 2] = [0.5, 1.0];
/// Overload factors of the SLO sweep (fractions of *dense* capacity — the
/// level High is pinned to). The second run is the ≥2× overload gate.
const SLO_SWEEP: [f64; 2] = [1.0, 2.5];
/// One High-priority request per this many submissions in the SLO and
/// open-loop sweeps.
const HIGH_EVERY: usize = 5;
/// The service-level ladder of the SLO sweep, most accurate first (per
/// `run_all`'s measured top-1 agreement vs. dense). The first degradation
/// steps are the training-free family — accuracy bought back without any
/// selector training — before the learned static and adaptive schedules
/// take over. Per-image MACs are non-increasing down the ladder
/// (token-merge and cls-attn share a token schedule), so every step the
/// admission controller takes predicts a cheaper batch.
const SLO_LADDER: [BackendKind; 6] = [
    BackendKind::Dense,
    BackendKind::TopK,
    BackendKind::TokenMerge,
    BackendKind::ClsAttn,
    BackendKind::StaticPruned,
    BackendKind::AdaptivePruned,
];
/// Batch sizes the shared EWMA is calibrated at, per variant — the sizes
/// a max_batch-8 server's flushes actually come in.
const CALIBRATION_BATCHES: [usize; 4] = [1, 2, 4, 8];
/// Lane counts compared by the multi-lane mixed-traffic section.
const LANE_SWEEP: [usize; 2] = [1, 2];
/// Open-loop sweep factors of dense capacity — deliberately past
/// saturation so the shed-rate curve has something to absorb.
const OPEN_SWEEP: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 3.0, 4.0];
const QUICK_OPEN_SWEEP: [f64; 3] = [0.5, 2.0, 4.0];

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Requests per (backend, rate) run: `HEATVIT_SERVE_REQUESTS` beats
/// `--quick` beats the default.
fn requests_per_run() -> usize {
    if let Ok(raw) = std::env::var("HEATVIT_SERVE_REQUESTS") {
        let n: usize = raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            panic!("HEATVIT_SERVE_REQUESTS must be a positive integer, got {raw:?}")
        });
        return n;
    }
    if quick() {
        QUICK_REQUESTS
    } else {
        DEFAULT_REQUESTS
    }
}

/// Holds the generator until `due`. Plain `thread::sleep` wakes a
/// scheduling quantum late when the lane threads keep the core busy —
/// enough slip per request that the offered rate never reached the target
/// at high rates. Sleeping only the coarse part and yield-spinning the
/// rest keeps the absolute schedule: each yield hands the core to a lane
/// thread and the generator is back within its timeslice credit.
fn pace(due: Instant) {
    loop {
        let Some(wait) = due.checked_duration_since(Instant::now()) else {
            return;
        };
        if wait > Duration::from_millis(2) {
            std::thread::sleep(wait - Duration::from_millis(1));
        } else if wait > Duration::from_micros(60) {
            std::thread::yield_now();
        } else {
            // The final stretch is a busy spin: exact release beats the
            // scheduler's wake granularity, and 60µs of one core is noise
            // next to the batches the lanes are running.
            std::hint::spin_loop();
        }
    }
}

/// Minimum offered/target ratio the closed-loop generator must hit.
fn pacing_floor() -> f64 {
    if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
        0.9
    } else {
        0.7
    }
}

/// `[v0, v1, ...]` — compact JSON arrays for the per-lane counters.
fn int_array(values: &[u64]) -> String {
    format!(
        "[{}]",
        values
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    )
}

struct RunResult {
    target_rate: f64,
    offered_rate: f64,
    report: heatvit_serve::ServeReport,
}

/// Offline measurement of one backend: capacity, parity reference, cost
/// profile, and the per-image wall-clock that seeds the EWMA.
struct Offline {
    kind: BackendKind,
    capacity: f64,
    per_image: Duration,
    profile: CostProfile,
}

/// One closed-loop run: `requests` paced submissions at `target_rate`
/// against a fresh server, all tickets resolved, zero-drop / bitwise
/// parity / offered-reaches-target asserted.
fn run_load(
    kind: BackendKind,
    target_rate: f64,
    requests: usize,
    deadline_budget: Duration,
    images: &[heatvit_tensor::Tensor],
    reference: &heatvit::BatchOutput,
) -> RunResult {
    let config = ServeConfig {
        max_batch: 8,
        // Sized to the whole run: the generator's pacing is never throttled
        // by queue backpressure, so overload shows up as latency in the
        // report instead of silently capping the offered rate.
        queue_capacity: requests.max(16),
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: deadline_budget,
        ..ServeConfig::default()
    };
    let server = Server::start(build_backend(kind), config);

    let interval = Duration::from_secs_f64(1.0 / target_rate);
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    for i in 0..requests {
        // Absolute schedule (no drift): request i is due at start + i·Δ.
        let due = started + interval.mul_f64(i as f64);
        pace(due);
        let ticket = server
            .submit(InferRequest {
                image: images[i % images.len()].clone(),
                deadline: Instant::now() + deadline_budget,
                priority: Priority::Normal,
            })
            .expect("server is open for the whole run");
        tickets.push(ticket);
    }
    let submit_window = started.elapsed();

    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let report = server.shutdown();

    // Hard acceptance gates: nothing dropped, every response bit-exact.
    assert_eq!(
        report.completed(),
        requests as u64,
        "{kind}: dropped requests at {target_rate:.0} img/s"
    );
    for (i, response) in responses.iter().enumerate() {
        let r = i % images.len();
        assert_eq!(
            response.logits.data(),
            reference.logits.row(r),
            "{kind}: served logits diverge from Engine::infer_batch (request {i})"
        );
        assert_eq!(response.macs, reference.macs[r]);
    }

    let offered_rate = requests as f64 / submit_window.as_secs_f64().max(1e-9);
    // On a single-core host the generator and the lane threads timeshare
    // one CPU, so pacing near saturation is physically looser there;
    // multi-core hosts sit at ~1.0× and get the strict gate.
    let floor = pacing_floor();
    assert!(
        offered_rate >= floor * target_rate,
        "{kind}: generator failed to reach the target rate \
         ({offered_rate:.0} offered vs {target_rate:.0} target img/s, floor {floor})"
    );
    RunResult {
        target_rate,
        offered_rate,
        report,
    }
}

/// Section 2: the latency-model comparison table and the rank-order gate.
fn latency_model_section(offline: &[Offline], ewma: &MeasuredEwma) -> (f64, f64) {
    let prior = FpgaCycleModel::default();
    println!("\nlatency models vs. measured host wall-clock (per image):");
    println!(
        "{:<18} {:>12} {:>15} {:>13}",
        "backend", "measured-ms", "fpga-prior-ms", "ewma-ms"
    );
    println!("{}", "-".repeat(61));
    let mut prior_err = 0.0f64;
    let mut ewma_err = 0.0f64;
    for o in offline {
        let measured = o.per_image.as_secs_f64();
        let p = prior.predict(&o.profile).as_secs_f64();
        let e = ewma.predict(&o.profile).as_secs_f64();
        prior_err += (p - measured).abs() / measured;
        ewma_err += (e - measured).abs() / measured;
        println!(
            "{:<18} {:>12.3} {:>15.3} {:>13.3}",
            o.kind.label(),
            measured * 1e3,
            p * 1e3,
            e * 1e3
        );
    }
    prior_err = 100.0 * prior_err / offline.len() as f64;
    ewma_err = 100.0 * ewma_err / offline.len() as f64;

    let profiles: Vec<CostProfile> = offline.iter().map(|o| o.profile.clone()).collect();
    let mut measured_order: Vec<usize> = (0..offline.len()).collect();
    measured_order.sort_by(|&a, &b| offline[a].per_image.cmp(&offline[b].per_image));
    let name = |order: &[usize]| {
        order
            .iter()
            .map(|&i| offline[i].kind.label())
            .collect::<Vec<_>>()
            .join(" < ")
    };
    let prior_order = rank_by_predicted(&prior, &profiles);
    let ewma_order = rank_by_predicted(ewma, &profiles);
    let prior_agree = prior_order
        .iter()
        .zip(measured_order.iter())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nmeasured rank (fastest first):   {}",
        name(&measured_order)
    );
    println!(
        "fpga-prior rank:                 {}   ({prior_agree}/{} positions match measured — \
         accelerator cycle order, reported not asserted)",
        name(&prior_order),
        offline.len()
    );
    println!("measured-EWMA rank:              {}", name(&ewma_order));
    assert_eq!(
        ewma_order, measured_order,
        "warmed MeasuredEwma over the FPGA prior must rank-order every backend as measured"
    );
    println!(
        "rank-order gate: warmed EWMA (fpga prior) orders all {} backends exactly as measured \
         (asserted)",
        offline.len()
    );
    println!(
        "predicted-vs-measured latency error: fpga prior {prior_err:.1}%, warmed EWMA \
         {ewma_err:.1}% (mean per-image, all backends)"
    );
    (prior_err, ewma_err)
}

/// Calibrates the shared EWMA's per-(variant, batch-size) buckets: every
/// backend is timed at every batch size a max_batch-8 server's flushes come
/// in, so `predict_batch` interpolates from a measured bucket instead of
/// scaling one full-batch per-image figure (small batches pay fixed
/// overheads the full-batch figure hides — the 17–20% admission error of
/// the unbucketed model).
fn calibrate_buckets(ewma: &MeasuredEwma, images: &[heatvit_tensor::Tensor]) {
    for kind in BackendKind::ALL {
        let model = build_backend(kind);
        let profile = model.cost_profile();
        let engine = Engine::builder(model).build();
        engine.infer_batch(&images[..CALIBRATION_BATCHES[CALIBRATION_BATCHES.len() - 1]]);
        for &batch in &CALIBRATION_BATCHES {
            ewma.observe(&profile, batch, timed_batch(&engine, &images[..batch]));
        }
    }
    println!(
        "calibrated MeasuredEwma per (variant, batch-size) bucket: {} variants x batches \
         {CALIBRATION_BATCHES:?}",
        BackendKind::ALL.len()
    );
}

/// Min-of-3 wall clock for one batch — the standard way to keep a stray
/// preemption (this is often a one-core host) out of a timing sample.
fn timed_batch(engine: &Engine<Backend>, images: &[heatvit_tensor::Tensor]) -> Duration {
    (0..3)
        .map(|_| engine.infer_batch(images).elapsed)
        .min()
        .expect("three timings")
}

/// The satellite gate on the calibrated model: re-measure every (variant,
/// batch-size) bucket on held-out timings and require the bucketed
/// `predict_batch` to land within 10% on average. This is the admission
/// model's accuracy in quiescence; the per-overload serving error printed
/// by section 3 measures the same model under one-core contention and is
/// reported, not asserted (a preempted batch can spike any single run).
fn bucket_error_gate(ewma: &MeasuredEwma, images: &[heatvit_tensor::Tensor]) -> f64 {
    let mut error = 0.0f64;
    let mut samples = 0u32;
    for kind in BackendKind::ALL {
        let model = build_backend(kind);
        let profile = model.cost_profile();
        let engine = Engine::builder(model).build();
        engine.infer_batch(&images[..CALIBRATION_BATCHES[CALIBRATION_BATCHES.len() - 1]]);
        for &batch in &CALIBRATION_BATCHES {
            let measured = timed_batch(&engine, &images[..batch]).as_secs_f64();
            let predicted = ewma
                .predict_batch(&profile, batch, engine.threads())
                .as_secs_f64();
            error += (predicted - measured).abs() / measured.max(1e-9);
            samples += 1;
        }
    }
    let error = 100.0 * error / samples as f64;
    assert!(
        error < 10.0,
        "bucketed-EWMA admission error must stay under 10%, got {error:.1}%"
    );
    println!(
        "admission error gate: bucketed EWMA predicts held-out (variant, batch-size) timings \
         within {error:.1}% mean error across {samples} buckets (< 10% asserted; the unbucketed \
         model sat at 17-20%)"
    );
    error
}

/// The redesign's honesty gate, run against live servers: per-class p95
/// latencies and shed counts read straight from the telemetry snapshot
/// must match the [`heatvit_serve::ServeReport`] table bitwise — the
/// report *is* a view over the same registry, so any divergence is a bug.
fn assert_snapshot_matches_report(snapshot: &Snapshot, report: &heatvit_serve::ServeReport) {
    for class in [Priority::High, Priority::Normal] {
        let labels = &[("class", class.label())][..];
        let c = report.class(class);
        let (_, p95_ms, _) = snapshot
            .series(names::CLASS_LATENCY, labels)
            .map(|s| s.percentiles_ms())
            .unwrap_or((0.0, 0.0, 0.0));
        assert_eq!(
            p95_ms.to_bits(),
            c.p95_ms().to_bits(),
            "snapshot p95 diverges from the report table for class {}",
            class.label()
        );
        assert_eq!(
            snapshot.counter(names::CLASS_SHEDS, labels),
            c.sheds(),
            "snapshot shed count diverges from the report table for class {}",
            class.label()
        );
    }
}

struct SloClassRow {
    factor: f64,
    class: Priority,
    completed: u64,
    p50_ms: f64,
    p95_ms: f64,
    miss_pct: f64,
    sheds: u64,
    degraded: u64,
    mean_keep: f64,
    predicted_error_pct: f64,
}

/// Section 3: one SLO overload run against the tiered ladder. Returns the
/// per-class rows for the table and JSON.
fn run_slo(
    factor: f64,
    requests: usize,
    dense_capacity: f64,
    ewma: &Arc<MeasuredEwma>,
    images: &[heatvit_tensor::Tensor],
) -> Vec<SloClassRow> {
    let per_image = Duration::from_secs_f64(1.0 / dense_capacity.max(1.0));
    let batch_window = per_image * 8;
    // Normal's budget binds under overload (degradation is the point);
    // High's is generous enough that only a bug — not scheduler jitter —
    // could miss it.
    let normal_budget = (batch_window * 4).max(Duration::from_millis(8));
    let high_budget = (batch_window * 40).max(Duration::from_millis(100));
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: 32,
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: normal_budget,
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::from_millis(1),
            shed_normal: true,
        },
        ..ServeConfig::default()
    };
    let models: Vec<Backend> = SLO_LADDER.into_iter().map(build_backend).collect();
    let server = Server::start_tiered(models, config, Arc::clone(ewma) as Arc<dyn LatencyModel>);

    let target = dense_capacity * factor;
    let interval = Duration::from_secs_f64(1.0 / target.max(1.0));
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    let mut submitted = 0u64;
    let mut shed_at_submit = 0u64;
    for i in 0..requests {
        let due = started + interval.mul_f64(i as f64);
        pace(due);
        let high = i % HIGH_EVERY == 0;
        let request = InferRequest {
            image: images[i % images.len()].clone(),
            deadline: Instant::now() + if high { high_budget } else { normal_budget },
            priority: if high {
                Priority::High
            } else {
                Priority::Normal
            },
        };
        submitted += 1;
        match server.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Shed { request, .. }) => {
                assert_eq!(
                    request.priority,
                    Priority::Normal,
                    "only Normal requests may be shed"
                );
                shed_at_submit += 1;
            }
            Err(other) => panic!("unexpected submit refusal at {factor:.1}x: {other}"),
        }
    }
    for ticket in tickets {
        ticket.wait();
    }
    let registry = Arc::clone(server.telemetry());
    let report = server.shutdown();
    assert_snapshot_matches_report(&registry.snapshot(), &report);

    // Accepted-never-dropped still holds with admission in front.
    assert_eq!(report.completed() + shed_at_submit, submitted);
    assert_eq!(report.sheds(), shed_at_submit);
    let high = report.class(Priority::High);
    assert_eq!(high.sheds(), 0, "High must never be shed ({factor:.1}x)");
    assert_eq!(
        high.deadline_misses(),
        0,
        "High must never miss its deadline ({factor:.1}x)"
    );
    assert_eq!(high.degraded(), 0, "High stays pinned to the dense level");
    if factor >= 2.0 {
        let normal = report.class(Priority::Normal);
        assert!(
            normal.degraded() > 0,
            "overload at {factor:.1}x must degrade Normal down the keep-rate ladder"
        );
    }

    [Priority::High, Priority::Normal]
        .into_iter()
        .map(|class| {
            let c = report.class(class);
            SloClassRow {
                factor,
                class,
                completed: c.completed(),
                p50_ms: c.p50_ms(),
                p95_ms: c.p95_ms(),
                miss_pct: c.miss_rate() * 100.0,
                sheds: c.sheds(),
                degraded: c.degraded(),
                mean_keep: c.mean_keep(),
                predicted_error_pct: report.predicted_error_pct(),
            }
        })
        .collect()
}

struct LaneRun {
    lanes: usize,
    throughput: f64,
    p95_ms: f64,
    report: heatvit_serve::ServeReport,
    /// The run's telemetry registry, kept alive past shutdown so main can
    /// print the Prometheus exposition and embed the snapshot in the JSON.
    registry: Arc<Registry>,
}

/// Section 4: the mixed float+int8 run at a given lane count. Alternating
/// High (pinned to the dense float level, home lane 0) and Normal with a
/// budget deliberately below every level's predicted batch time — with
/// shedding off, admission deterministically lands Normal on the last
/// level, the int8 backend (home lane 1 when two lanes exist). The two
/// backends then batch and execute on their own lanes.
fn run_lanes(
    lanes: usize,
    requests: usize,
    mixed_capacity: f64,
    ladder_per_image: [Duration; 2],
    ewma: &Arc<MeasuredEwma>,
    images: &[heatvit_tensor::Tensor],
) -> LaneRun {
    let min_batch_svc = ladder_per_image.iter().min().copied().unwrap_or_default() * 8;
    let max_batch_svc = ladder_per_image.iter().max().copied().unwrap_or_default() * 8;
    // Half the *cheapest* level's full-batch time: every level predicts a
    // miss with ~2x margin, so routing does not depend on the EWMA's exact
    // state. The misses this manufactures are reported, never dropped.
    let normal_budget = min_batch_svc / 2;
    let high_budget = (max_batch_svc * 40).max(Duration::from_millis(100));
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: requests.max(16),
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: normal_budget,
        lanes: LaneCount::Fixed(lanes),
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::ZERO,
            // Off: a Normal that misses every prediction degrades to the
            // cheapest level instead of shedding — the deterministic
            // "int8 lane" routing this section is about.
            shed_normal: false,
        },
        ..ServeConfig::default()
    };
    let models = vec![
        build_backend(BackendKind::Dense),
        build_backend(BackendKind::Int8Dense),
    ];
    let server = Server::start_tiered(models, config, Arc::clone(ewma) as Arc<dyn LatencyModel>);
    if lanes >= 2 {
        assert_eq!(server.home_lane(0), 0, "dense homes on lane 0");
        assert_eq!(server.home_lane(1), 1, "int8 homes on lane 1");
    }

    let interval = Duration::from_secs_f64(1.0 / mixed_capacity.max(1.0));
    let started = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let due = started + interval.mul_f64(i as f64);
            pace(due);
            let high = i % 2 == 0;
            server
                .submit(InferRequest {
                    image: images[i % images.len()].clone(),
                    deadline: Instant::now() + if high { high_budget } else { normal_budget },
                    priority: if high {
                        Priority::High
                    } else {
                        Priority::Normal
                    },
                })
                .expect("mixed run never sheds (shed_normal off) nor fills the queue")
        })
        .collect();
    let high_count = requests.div_ceil(2) as u64;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket.wait();
        if i % 2 == 0 {
            assert_eq!(response.level, 0, "High pins to the float dense level");
        } else {
            assert_eq!(response.level, 1, "Normal lands on the int8 level");
        }
        assert!(response.lane < lanes);
    }
    let registry = Arc::clone(server.telemetry());
    let report = server.shutdown();
    assert_snapshot_matches_report(&registry.snapshot(), &report);
    assert_eq!(
        report.completed(),
        requests as u64,
        "{lanes}-lane run dropped requests"
    );
    assert_eq!(
        report.level_served(),
        &[high_count, requests as u64 - high_count][..],
        "deterministic float/int8 split broke at {lanes} lanes"
    );
    assert_eq!(report.lane_served().iter().sum::<u64>(), requests as u64);
    if lanes >= 2 {
        assert!(
            report.lane_served()[1] > 0,
            "the int8 home lane must serve traffic"
        );
    }
    LaneRun {
        lanes,
        throughput: report.throughput(),
        p95_ms: report.p95_ms(),
        report,
        registry,
    }
}

struct OpenLoopRow {
    factor: f64,
    target_rate: f64,
    offered_rate: f64,
    served_rate: f64,
    p50_ms: f64,
    p95_ms: f64,
    accepted: u64,
    sheds: u64,
    full: u64,
}

impl OpenLoopRow {
    fn shed_pct(&self, requests: usize) -> f64 {
        100.0 * (self.sheds + self.full) as f64 / requests as f64
    }
}

/// Section 5: one open-loop run. `try_submit` on an absolute schedule —
/// the generator never blocks, so `offered` tracks `target` arbitrarily
/// far past saturation; a full queue or an admission shed is a drop at
/// the door, counted, with High asserted exempt from both.
fn run_open_loop(
    factor: f64,
    requests: usize,
    dense_capacity: f64,
    ewma: &Arc<MeasuredEwma>,
    images: &[heatvit_tensor::Tensor],
) -> OpenLoopRow {
    let per_image = Duration::from_secs_f64(1.0 / dense_capacity.max(1.0));
    let batch_window = per_image * 8;
    let normal_budget = (batch_window * 4).max(Duration::from_millis(8));
    let high_budget = (batch_window * 40).max(Duration::from_millis(100));
    let config = ServeConfig {
        max_batch: 8,
        // Deep enough that queue-full refusals never hit High: admission
        // shedding, not queue overflow, is the open-loop overload valve.
        queue_capacity: requests.max(32),
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: normal_budget,
        lanes: LaneCount::Fixed(2),
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::from_millis(1),
            shed_normal: true,
        },
        ..ServeConfig::default()
    };
    let models: Vec<Backend> = SLO_LADDER.into_iter().map(build_backend).collect();
    let server = Server::start_tiered(models, config, Arc::clone(ewma) as Arc<dyn LatencyModel>);

    let target_rate = dense_capacity * factor;
    let interval = Duration::from_secs_f64(1.0 / target_rate.max(1.0));
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    let mut sheds = 0u64;
    let mut full = 0u64;
    let mut high_submitted = 0u64;
    for i in 0..requests {
        let due = started + interval.mul_f64(i as f64);
        pace(due);
        let high = i % HIGH_EVERY == 0;
        high_submitted += high as u64;
        let request = InferRequest {
            image: images[i % images.len()].clone(),
            deadline: Instant::now() + if high { high_budget } else { normal_budget },
            priority: if high {
                Priority::High
            } else {
                Priority::Normal
            },
        };
        match server.try_submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Shed { request, .. }) => {
                assert_eq!(
                    request.priority,
                    Priority::Normal,
                    "High must never be shed ({factor:.1}x open loop)"
                );
                sheds += 1;
            }
            Err(SubmitError::Full(request)) => {
                assert_eq!(
                    request.priority,
                    Priority::Normal,
                    "High must never be refused for queue space ({factor:.1}x open loop)"
                );
                full += 1;
            }
            Err(other) => panic!("unexpected open-loop refusal at {factor:.1}x: {other}"),
        }
    }
    let submit_window = started.elapsed();
    let accepted = tickets.len() as u64;
    for ticket in tickets {
        ticket.wait();
    }
    let report = server.shutdown();

    assert_eq!(
        report.completed(),
        accepted,
        "accepted open-loop requests must all be served"
    );
    assert_eq!(accepted + sheds + full, requests as u64);
    let high = report.class(Priority::High);
    assert_eq!(high.sheds(), 0);
    assert_eq!(
        high.completed(),
        high_submitted,
        "every High submission must be accepted and served ({factor:.1}x open loop)"
    );

    let offered_rate = requests as f64 / submit_window.as_secs_f64().max(1e-9);
    OpenLoopRow {
        factor,
        target_rate,
        offered_rate,
        served_rate: report.throughput(),
        p50_ms: report.p50_ms(),
        p95_ms: report.p95_ms(),
        accepted,
        sheds,
        full,
    }
}

fn main() {
    let requests = requests_per_run();
    let images = synthetic_batch(IMAGE_POOL, 0);
    let sweep: &[f64] = if quick() { &QUICK_SWEEP } else { &SWEEP };
    println!(
        "heatvit serve_demo: closed-loop sweep, {requests} requests per run, \
         {IMAGE_POOL}-image pool, rates at {sweep:?} of offline batch capacity\n"
    );

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>9} {:>9} {:>7} {:>11} {:>17}",
        "backend",
        "target img/s",
        "offered",
        "served img/s",
        "p50(ms)",
        "p95(ms)",
        "miss%",
        "mean batch",
        "flush mb/dl/id/sd"
    );
    println!("{}", "-".repeat(116));

    // The online latency model the whole demo shares: FPGA cycle prior,
    // corrected by every measured execution (offline batches here, then
    // the tiered servers' own batches).
    let ewma = Arc::new(MeasuredEwma::new(FpgaCycleModel::default(), 0.25));

    let mut offline: Vec<Offline> = Vec::new();
    let mut json_runs: Vec<String> = Vec::new();
    for kind in BackendKind::ALL {
        // Offline capacity + the bitwise parity reference for this backend.
        let model = build_backend(kind);
        let profile = model.cost_profile();
        let engine = Engine::builder(model).build();
        engine.infer_batch(&images); // warm the scratch pool
        let reference = engine.infer_batch(&images);
        let capacity = reference.throughput();
        ewma.observe(&profile, reference.len(), reference.elapsed);
        // Deadline budget: generous at low load, binding near saturation —
        // a full batch plus slack, floored for scheduler granularity.
        let per_image = Duration::from_secs_f64(1.0 / capacity.max(1.0));
        let deadline_budget = (per_image * 8 * 3).max(Duration::from_millis(5));

        for &fraction in sweep {
            let target = (capacity * fraction).max(1.0);
            let result = run_load(kind, target, requests, deadline_budget, &images, &reference);
            let r = &result.report;
            println!(
                "{:<18} {:>12.0} {:>12.0} {:>12.0} {:>9.2} {:>9.2} {:>6.1}% {:>11.1} {:>8}/{}/{}/{}",
                kind.label(),
                result.target_rate,
                result.offered_rate,
                r.throughput(),
                r.p50_ms(),
                r.p95_ms(),
                r.miss_rate() * 100.0,
                r.mean_batch(),
                r.flushes().max_batch,
                r.flushes().deadline,
                r.flushes().idle,
                r.flushes().shutdown,
            );
            json_runs.push(
                JsonObject::new()
                    .str("backend", kind.label())
                    .num("capacity_images_per_s", capacity)
                    .num("target_rate", result.target_rate)
                    .num("offered_rate", result.offered_rate)
                    .num("served_images_per_s", r.throughput())
                    .num("p50_ms", r.p50_ms())
                    .num("p95_ms", r.p95_ms())
                    .num("miss_pct", r.miss_rate() * 100.0)
                    .num("mean_batch", r.mean_batch())
                    .num("predicted_error_pct", r.predicted_error_pct())
                    .build(),
            );
        }
        offline.push(Offline {
            kind,
            capacity,
            per_image,
            profile,
        });
    }

    println!("\nzero dropped requests across the sweep (asserted: completed == submitted per run)");
    println!(
        "parity: every served response bitwise-identical to Engine::infer_batch on the same \
         image (logits and MACs asserted per request)"
    );
    println!(
        "pacing: offered reaches target at every rate (asserted >= {:.1}x on this host; the \
         queue is sized to the run, so backpressure never throttles the generator)",
        pacing_floor()
    );
    println!(
        "deadline budget per backend: 3x a full max_batch of offline per-image time (>=5ms); \
         miss% reports responses resolved after their deadline — reported, never dropped"
    );

    let (prior_err, ewma_err) = latency_model_section(&offline, &ewma);
    println!();
    calibrate_buckets(&ewma, &images);
    let bucket_error = bucket_error_gate(&ewma, &images);

    // Section 3: the SLO overload sweep against the tiered ladder.
    let dense_capacity = offline
        .iter()
        .find(|o| o.kind == BackendKind::Dense)
        .expect("dense is always measured")
        .capacity;
    // Floored at 96 even in quick mode: the degradation window between
    // adjacent ladder levels is under a millisecond of predicted wait, so
    // the overload run needs enough arrivals to land in it, and the
    // admission-error gate needs enough warmed batches to average over.
    let slo_requests = requests.max(96);
    println!(
        "\nSLO-aware tiered serving: ladder {} (most accurate first), predictive admission on, \
         1-in-{HIGH_EVERY} requests High, {slo_requests} requests per run, overload = fraction \
         of dense capacity ({dense_capacity:.0} img/s)",
        SLO_LADDER
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(" > ")
    );
    println!(
        "{:>8} {:>8} {:>10} {:>9} {:>9} {:>7} {:>6} {:>9} {:>10}",
        "overload",
        "class",
        "completed",
        "p50(ms)",
        "p95(ms)",
        "miss%",
        "shed",
        "degraded",
        "mean-keep"
    );
    println!("{}", "-".repeat(84));
    let mut json_slo: Vec<String> = Vec::new();
    let mut slo_errors: Vec<f64> = Vec::new();
    for factor in SLO_SWEEP {
        let rows = run_slo(factor, slo_requests, dense_capacity, &ewma, &images);
        for row in &rows {
            println!(
                "{:>7.1}x {:>8} {:>10} {:>9.2} {:>9.2} {:>6.1}% {:>6} {:>9} {:>10.3}",
                row.factor,
                row.class.label(),
                row.completed,
                row.p50_ms,
                row.p95_ms,
                row.miss_pct,
                row.sheds,
                row.degraded,
                row.mean_keep,
            );
            json_slo.push(
                JsonObject::new()
                    .num("overload", row.factor)
                    .str("class", row.class.label())
                    .int("completed", row.completed)
                    .num("p50_ms", row.p50_ms)
                    .num("p95_ms", row.p95_ms)
                    .num("miss_pct", row.miss_pct)
                    .int("sheds", row.sheds)
                    .int("degraded", row.degraded)
                    .num("mean_keep", row.mean_keep)
                    .num("predicted_error_pct", row.predicted_error_pct)
                    .build(),
            );
        }
        let error = rows[0].predicted_error_pct;
        slo_errors.push(error);
        println!(
            "         predicted-vs-measured latency error at {factor:.1}x: {error:.1}% \
             (mean per warmed batch, admission EWMA)"
        );
    }
    println!(
        "high-priority SLO held: zero sheds, zero deadline misses, zero degradations at every \
         overload (asserted)"
    );
    println!(
        "normal degrades before High sheds: under >=2x overload Normal moves down the keep-rate \
         ladder (mean-keep < 1, asserted) and is shed only when every level predicts a miss"
    );
    let slo_error = slo_errors.iter().sum::<f64>() / slo_errors.len() as f64;
    println!(
        "admission error under load: bucketed EWMA predicted-vs-measured error {slo_error:.1}% \
         mean across overloads (reported; one-core contention makes any single run noisy — the \
         asserted gate is the held-out bucket error above)"
    );

    // Section 4: the multi-lane mixed float+int8 comparison.
    let int8_per_image = offline
        .iter()
        .find(|o| o.kind == BackendKind::Int8Dense)
        .expect("int8-dense is always measured")
        .per_image;
    let dense_per_image = Duration::from_secs_f64(1.0 / dense_capacity.max(1.0));
    // Aggregate drain rate of a 50/50 dense/int8 mix on one core.
    let mixed_capacity =
        2.0 / (dense_per_image.as_secs_f64() + int8_per_image.as_secs_f64()).max(1e-9);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nmulti-lane mixed traffic: ladder dense > int8-dense, alternating High (float lane) / \
         tight-budget Normal (int8 lane), {requests} requests at {mixed_capacity:.0} img/s \
         (the 50/50 mix's one-core drain rate), {cores} core(s) available"
    );
    let mut json_lanes: Vec<String> = Vec::new();
    let mut lane_results: Vec<LaneRun> = Vec::new();
    for lanes in LANE_SWEEP {
        let run = run_lanes(
            lanes,
            requests,
            mixed_capacity,
            [dense_per_image, int8_per_image],
            &ewma,
            &images,
        );
        println!(
            "  lanes={}: {:.0} img/s aggregate, p95 {:.2} ms, {} requests stolen across {} \
             steal flushes",
            run.lanes,
            run.throughput,
            run.p95_ms,
            run.report.stolen(),
            run.report.flushes().steal,
        );
        for lane in 0..run.report.lanes() {
            println!(
                "    lane {lane}: served {:>4}  stolen {:>3}  queue-hwm {:>3}",
                run.report.lane_served()[lane],
                run.report.lane_steals()[lane],
                run.report.lane_queue_hwm()[lane],
            );
        }
        json_lanes.push(
            JsonObject::new()
                .int("lanes", run.lanes as u64)
                .num("served_images_per_s", run.throughput)
                .num("p95_ms", run.p95_ms)
                .int("stolen", run.report.stolen())
                .int("steal_flushes", run.report.flushes().steal)
                .raw("lane_served", int_array(run.report.lane_served()))
                .raw("lane_steals", int_array(run.report.lane_steals()))
                .raw("lane_queue_hwm", int_array(run.report.lane_queue_hwm()))
                .build(),
        );
        lane_results.push(run);
    }
    let single = lane_results[0].throughput;
    let dual = lane_results[1].throughput;
    if cores == 1 {
        println!(
            "  single-core host: both lanes timeshare one core, so the 2-lane aggregate \
             ({dual:.0} img/s) tracks the 1-lane run ({single:.0} img/s); the 2-lane win here is \
             isolation — float and int8 batches never serialize on one batcher — and the \
             parallel speedup needs a multi-core host"
        );
    } else if dual > single {
        println!(
            "  2-lane aggregate exceeds single-lane on this {cores}-core host: {dual:.0} vs \
             {single:.0} img/s"
        );
    } else {
        println!(
            "  2-lane aggregate did not exceed single-lane on this {cores}-core host ({dual:.0} \
             vs {single:.0} img/s) — this mix is batcher-bound, not compute-bound"
        );
    }
    println!(
        "  per-backend isolation held: High served by the float level, every tight-budget \
         Normal by the int8 level, at both lane counts (asserted per response)"
    );
    println!(
        "  telemetry parity: per-class p95 and shed counts in each run's registry snapshot \
         match the ServeReport table bitwise (asserted for every SLO and lane run)"
    );

    // The observability surface itself, from the 2-lane run: serve and
    // engine metrics in one Prometheus-style exposition. CI greps this
    // block for nonzero admission totals and the per-lane served lines.
    let lane_snapshot = lane_results
        .last()
        .expect("lane sweep ran")
        .registry
        .snapshot();
    println!("\nprometheus exposition (2-lane mixed-traffic run):");
    print!("{}", render_prometheus(&lane_snapshot));

    // Section 5: the open-loop saturation sweep.
    let open_sweep: &[f64] = if quick() {
        &QUICK_OPEN_SWEEP
    } else {
        &OPEN_SWEEP
    };
    // Floored at 96 even in quick mode: the shed-rate curve needs enough
    // backlog to accumulate for overload to actually shed.
    let open_requests = requests.max(96);
    println!(
        "\nopen-loop saturation sweep: tiered ladder on 2 lanes, try_submit never blocks (a \
         full queue or an admission shed drops at the door), {open_requests} requests per rate, \
         rates at {open_sweep:?} of dense capacity"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "overload",
        "target img/s",
        "offered",
        "served img/s",
        "p50(ms)",
        "p95(ms)",
        "shed%",
        "shed",
        "full"
    );
    println!("{}", "-".repeat(88));
    let mut json_open: Vec<String> = Vec::new();
    let mut overload_drops = 0u64;
    for &factor in open_sweep {
        let row = run_open_loop(factor, open_requests, dense_capacity, &ewma, &images);
        if factor >= 2.0 {
            overload_drops += row.sheds + row.full;
        }
        println!(
            "{:>7.1}x {:>12.0} {:>12.0} {:>12.0} {:>9.2} {:>9.2} {:>6.1}% {:>6} {:>6}",
            row.factor,
            row.target_rate,
            row.offered_rate,
            row.served_rate,
            row.p50_ms,
            row.p95_ms,
            row.shed_pct(open_requests),
            row.sheds,
            row.full,
        );
        json_open.push(
            JsonObject::new()
                .num("overload", row.factor)
                .num("target_rate", row.target_rate)
                .num("offered_rate", row.offered_rate)
                .num("served_images_per_s", row.served_rate)
                .num("p50_ms", row.p50_ms)
                .num("p95_ms", row.p95_ms)
                .num("shed_pct", row.shed_pct(open_requests))
                .int("accepted", row.accepted)
                .int("sheds", row.sheds)
                .int("queue_full", row.full)
                .build(),
        );
    }
    assert!(
        overload_drops > 0,
        ">=2x open-loop overload must shed some Normal traffic"
    );
    println!(
        "open-loop saturation: offered tracks target past capacity; served plateaus at the \
         ladder's drain rate while admission shedding absorbs the overflow (sheds asserted \
         across the >=2x overloads)"
    );
    println!(
        "high-priority open-loop gate: zero High sheds and zero High queue-full refusals at \
         every swept rate (asserted)"
    );

    Emitter::new("serve_demo")
        .int("requests_per_run", requests as u64)
        .int("image_pool", IMAGE_POOL as u64)
        .int("cores_available", cores as u64)
        .num("latency_prior_error_pct", prior_err)
        .num("latency_ewma_error_pct", ewma_err)
        .num("bucket_admission_error_pct", bucket_error)
        .num("slo_admission_error_pct", slo_error)
        .raw("runs", json::array(json_runs))
        .raw("slo_runs", json::array(json_slo))
        .raw("lane_runs", json::array(json_lanes))
        .raw("open_loop", json::array(json_open))
        .metrics("telemetry", &lane_snapshot)
        .write_if_requested();
}
