//! Closed-loop serving demo: a `heatvit-serve` [`Server`] per backend,
//! driven by a paced load generator that sweeps arrival rates and prints a
//! latency/throughput/deadline-miss table.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin serve_demo [-- --quick]
//! ```
//!
//! For every [`BackendKind`] the demo first measures offline batch capacity
//! (images/s through a plain `Engine`), then sweeps arrival rates at fixed
//! fractions of that capacity. The generator is *closed-loop*: it paces
//! submissions at the target rate but blocks whenever the server's bounded
//! queue is full, so overload sheds into submission lag (visible as
//! `offered < target`) instead of drops — **zero requests are ever
//! dropped**, asserted per run. Every served response is also asserted
//! bitwise identical to `Engine::infer_batch` on the same image, so the
//! table only prints verified arithmetic.
//!
//! `--quick` shrinks the request count and sweep for CI smoke runs;
//! `HEATVIT_SERVE_REQUESTS` overrides the per-run request count outright.
//! `--json <path>` additionally writes the sweep as a machine-readable
//! report (one object per backend × rate: offline capacity, target and
//! offered rates, served images/s, p50/p95 latency, deadline-miss
//! percentage, mean batch) — the committed `BENCH_serve.json` at the repo
//! root is produced this way.

use heatvit::{BackendKind, Engine};
use heatvit_bench::json::{self, JsonObject};
use heatvit_bench::{build_backend, synthetic_batch};
use heatvit_serve::{InferRequest, Priority, ServeConfig, Server};
use std::time::{Duration, Instant};

/// Distinct images cycled by the generator (and the parity reference).
const IMAGE_POOL: usize = 16;
const DEFAULT_REQUESTS: usize = 96;
const QUICK_REQUESTS: usize = 24;
/// Arrival-rate sweep as fractions of measured offline batch capacity.
const SWEEP: [f64; 3] = [0.25, 0.5, 1.0];
const QUICK_SWEEP: [f64; 2] = [0.5, 1.0];

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Requests per (backend, rate) run: `HEATVIT_SERVE_REQUESTS` beats
/// `--quick` beats the default.
fn requests_per_run() -> usize {
    if let Ok(raw) = std::env::var("HEATVIT_SERVE_REQUESTS") {
        let n: usize = raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            panic!("HEATVIT_SERVE_REQUESTS must be a positive integer, got {raw:?}")
        });
        return n;
    }
    if quick() {
        QUICK_REQUESTS
    } else {
        DEFAULT_REQUESTS
    }
}

struct RunResult {
    target_rate: f64,
    offered_rate: f64,
    report: heatvit_serve::ServeReport,
}

/// One closed-loop run: `requests` paced submissions at `target_rate`
/// against a fresh server, all tickets resolved, zero-drop and bitwise
/// parity asserted.
fn run_load(
    kind: BackendKind,
    target_rate: f64,
    requests: usize,
    deadline_budget: Duration,
    images: &[heatvit_tensor::Tensor],
    reference: &heatvit::BatchOutput,
) -> RunResult {
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: 16,
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: deadline_budget,
        engine: heatvit::EngineConfig::default(),
    };
    let server = Server::start(build_backend(kind), config);

    let interval = Duration::from_secs_f64(1.0 / target_rate);
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    for i in 0..requests {
        // Absolute schedule (no drift): request i is due at start + i·Δ.
        // `submit` blocking on a full queue is the closed loop: overload
        // pushes the schedule late rather than dropping anything.
        let due = started + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let ticket = server
            .submit(InferRequest {
                image: images[i % images.len()].clone(),
                deadline: Instant::now() + deadline_budget,
                priority: Priority::Normal,
            })
            .expect("server is open for the whole run");
        tickets.push(ticket);
    }
    let submit_window = started.elapsed();

    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let report = server.shutdown();

    // Hard acceptance gates: nothing dropped, every response bit-exact.
    assert_eq!(
        report.completed, requests as u64,
        "{kind}: dropped requests at {target_rate:.0} img/s"
    );
    for (i, response) in responses.iter().enumerate() {
        let r = i % images.len();
        assert_eq!(
            response.logits.data(),
            reference.logits.row(r),
            "{kind}: served logits diverge from Engine::infer_batch (request {i})"
        );
        assert_eq!(response.macs, reference.macs[r]);
    }

    RunResult {
        target_rate,
        offered_rate: requests as f64 / submit_window.as_secs_f64().max(1e-9),
        report,
    }
}

fn main() {
    let requests = requests_per_run();
    let images = synthetic_batch(IMAGE_POOL, 0);
    let sweep: &[f64] = if quick() { &QUICK_SWEEP } else { &SWEEP };
    println!(
        "heatvit serve_demo: closed-loop sweep, {requests} requests per run, \
         {IMAGE_POOL}-image pool, rates at {sweep:?} of offline batch capacity\n"
    );

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>9} {:>9} {:>7} {:>11} {:>17}",
        "backend",
        "target img/s",
        "offered",
        "served img/s",
        "p50(ms)",
        "p95(ms)",
        "miss%",
        "mean batch",
        "flush mb/dl/id/sd"
    );
    println!("{}", "-".repeat(116));

    let mut json_runs: Vec<String> = Vec::new();
    for kind in BackendKind::ALL {
        // Offline capacity + the bitwise parity reference for this backend.
        let engine = Engine::builder(build_backend(kind)).build();
        engine.infer_batch(&images); // warm the scratch pool
        let reference = engine.infer_batch(&images);
        let capacity = reference.throughput();
        // Deadline budget: generous at low load, binding near saturation —
        // a full batch plus slack, floored for scheduler granularity.
        let per_image = Duration::from_secs_f64(1.0 / capacity.max(1.0));
        let deadline_budget = (per_image * 8 * 3).max(Duration::from_millis(5));

        for &fraction in sweep {
            let target = (capacity * fraction).max(1.0);
            let result = run_load(kind, target, requests, deadline_budget, &images, &reference);
            let r = &result.report;
            println!(
                "{:<18} {:>12.0} {:>12.0} {:>12.0} {:>9.2} {:>9.2} {:>6.1}% {:>11.1} {:>8}/{}/{}/{}",
                kind.label(),
                result.target_rate,
                result.offered_rate,
                r.throughput,
                r.p50_ms,
                r.p95_ms,
                r.miss_rate() * 100.0,
                r.mean_batch,
                r.flushes.max_batch,
                r.flushes.deadline,
                r.flushes.idle,
                r.flushes.shutdown,
            );
            json_runs.push(
                JsonObject::new()
                    .str("backend", kind.label())
                    .num("capacity_images_per_s", capacity)
                    .num("target_rate", result.target_rate)
                    .num("offered_rate", result.offered_rate)
                    .num("served_images_per_s", r.throughput)
                    .num("p50_ms", r.p50_ms)
                    .num("p95_ms", r.p95_ms)
                    .num("miss_pct", r.miss_rate() * 100.0)
                    .num("mean_batch", r.mean_batch)
                    .build(),
            );
        }
    }

    println!("\nzero dropped requests across the sweep (asserted: completed == submitted per run)");
    println!(
        "parity: every served response bitwise-identical to Engine::infer_batch on the same \
         image (logits and MACs asserted per request)"
    );
    println!(
        "deadline budget per backend: 3x a full max_batch of offline per-image time (>=5ms); \
         miss% reports responses resolved after their deadline — reported, never dropped"
    );

    if let Some(path) = json::path_from_args() {
        let report = JsonObject::new()
            .str("bench", "serve_demo")
            .int("requests_per_run", requests as u64)
            .int("image_pool", IMAGE_POOL as u64)
            .raw("runs", json::array(json_runs))
            .build();
        std::fs::write(&path, report + "\n")
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        println!("\nwrote {}", path.display());
    }
}
