//! Closed-loop serving demo: a `heatvit-serve` [`Server`] per backend,
//! driven by a paced load generator that sweeps arrival rates and prints a
//! latency/throughput/deadline-miss table — plus the latency-model
//! rank-order check and the SLO-aware tiered overload sweep.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin serve_demo [-- --quick]
//! ```
//!
//! Three sections:
//!
//! 1. **Per-backend sweep.** For every [`BackendKind`] the demo measures
//!    offline batch capacity (images/s through a plain `Engine`), then
//!    sweeps arrival rates at fixed fractions of that capacity. The
//!    generator is *closed-loop*: it paces submissions at the target rate
//!    but blocks whenever the server's bounded queue is full, so overload
//!    sheds into submission lag (visible as `offered < target`) instead of
//!    drops — **zero requests are ever dropped**, asserted per run. Every
//!    served response is also asserted bitwise identical to
//!    `Engine::infer_batch` on the same image.
//! 2. **Latency models vs. measured.** Each backend's offline run feeds a
//!    `MeasuredEwma` whose prior is the `heatvit-fpga` cycle model. The
//!    demo prints the raw FPGA-prior prediction, the warmed EWMA
//!    prediction, and the measured per-image time side by side, and
//!    **asserts** that the warmed model rank-orders all five backends
//!    exactly as measured. (The raw prior ranks *accelerator* latency —
//!    int8 packing wins cycles on DSPs but loses host wall-clock — so its
//!    agreement is reported, not asserted.)
//! 3. **SLO-aware tiered overload sweep.** One tiered server over the
//!    dense → static-pruned → adaptive-pruned ladder, predictive admission
//!    on, driven by an 80/20 Normal/High mix at 1× and 2.5× of dense
//!    capacity. High is pinned to dense and must finish with **zero sheds
//!    and zero deadline misses** (asserted); Normal degrades down the
//!    keep-rate ladder under overload (asserted) and sheds only when even
//!    the cheapest level predicts a miss. The per-class table reports
//!    p50/p95, miss%, sheds, degradations, and the mean-keep accuracy
//!    proxy.
//!
//! `--quick` shrinks the request count and sweep for CI smoke runs;
//! `HEATVIT_SERVE_REQUESTS` overrides the per-run request count outright.
//! `--json <path>` additionally writes the sweeps as a machine-readable
//! report (`runs` one object per backend × rate, `slo_runs` one object per
//! overload × SLO class) — the committed `BENCH_serve.json` at the repo
//! root is produced this way.

use heatvit::{
    rank_by_predicted, Backend, BackendKind, CostProfile, Engine, InferenceModel, LatencyModel,
    MeasuredEwma,
};
use heatvit_bench::json::{self, JsonObject};
use heatvit_bench::{build_backend, synthetic_batch};
use heatvit_fpga::FpgaCycleModel;
use heatvit_serve::{InferRequest, Priority, ServeConfig, Server, SloPolicy, SubmitError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Distinct images cycled by the generator (and the parity reference).
const IMAGE_POOL: usize = 16;
const DEFAULT_REQUESTS: usize = 96;
const QUICK_REQUESTS: usize = 24;
/// Arrival-rate sweep as fractions of measured offline batch capacity.
const SWEEP: [f64; 3] = [0.25, 0.5, 1.0];
const QUICK_SWEEP: [f64; 2] = [0.5, 1.0];
/// Overload factors of the SLO sweep (fractions of *dense* capacity — the
/// level High is pinned to). The second run is the ≥2× overload gate.
const SLO_SWEEP: [f64; 2] = [1.0, 2.5];
/// One High-priority request per this many submissions in the SLO sweep.
const HIGH_EVERY: usize = 5;
/// The service-level ladder of the SLO sweep, most accurate first. Host
/// wall-clock happens to increase in the same order (dense slowest), so
/// degradation buys real latency at each step.
const SLO_LADDER: [BackendKind; 3] = [
    BackendKind::Dense,
    BackendKind::StaticPruned,
    BackendKind::AdaptivePruned,
];

fn quick() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Requests per (backend, rate) run: `HEATVIT_SERVE_REQUESTS` beats
/// `--quick` beats the default.
fn requests_per_run() -> usize {
    if let Ok(raw) = std::env::var("HEATVIT_SERVE_REQUESTS") {
        let n: usize = raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            panic!("HEATVIT_SERVE_REQUESTS must be a positive integer, got {raw:?}")
        });
        return n;
    }
    if quick() {
        QUICK_REQUESTS
    } else {
        DEFAULT_REQUESTS
    }
}

struct RunResult {
    target_rate: f64,
    offered_rate: f64,
    report: heatvit_serve::ServeReport,
}

/// Offline measurement of one backend: capacity, parity reference, cost
/// profile, and the per-image wall-clock that seeds the EWMA.
struct Offline {
    kind: BackendKind,
    capacity: f64,
    per_image: Duration,
    profile: CostProfile,
}

/// One closed-loop run: `requests` paced submissions at `target_rate`
/// against a fresh server, all tickets resolved, zero-drop and bitwise
/// parity asserted.
fn run_load(
    kind: BackendKind,
    target_rate: f64,
    requests: usize,
    deadline_budget: Duration,
    images: &[heatvit_tensor::Tensor],
    reference: &heatvit::BatchOutput,
) -> RunResult {
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: 16,
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: deadline_budget,
        ..ServeConfig::default()
    };
    let server = Server::start(build_backend(kind), config);

    let interval = Duration::from_secs_f64(1.0 / target_rate);
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    for i in 0..requests {
        // Absolute schedule (no drift): request i is due at start + i·Δ.
        // `submit` blocking on a full queue is the closed loop: overload
        // pushes the schedule late rather than dropping anything.
        let due = started + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let ticket = server
            .submit(InferRequest {
                image: images[i % images.len()].clone(),
                deadline: Instant::now() + deadline_budget,
                priority: Priority::Normal,
            })
            .expect("server is open for the whole run");
        tickets.push(ticket);
    }
    let submit_window = started.elapsed();

    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let report = server.shutdown();

    // Hard acceptance gates: nothing dropped, every response bit-exact.
    assert_eq!(
        report.completed, requests as u64,
        "{kind}: dropped requests at {target_rate:.0} img/s"
    );
    for (i, response) in responses.iter().enumerate() {
        let r = i % images.len();
        assert_eq!(
            response.logits.data(),
            reference.logits.row(r),
            "{kind}: served logits diverge from Engine::infer_batch (request {i})"
        );
        assert_eq!(response.macs, reference.macs[r]);
    }

    RunResult {
        target_rate,
        offered_rate: requests as f64 / submit_window.as_secs_f64().max(1e-9),
        report,
    }
}

/// Section 2: the latency-model comparison table and the rank-order gate.
fn latency_model_section(offline: &[Offline], ewma: &MeasuredEwma) -> (f64, f64) {
    let prior = FpgaCycleModel::default();
    println!("\nlatency models vs. measured host wall-clock (per image):");
    println!(
        "{:<18} {:>12} {:>15} {:>13}",
        "backend", "measured-ms", "fpga-prior-ms", "ewma-ms"
    );
    println!("{}", "-".repeat(61));
    let mut prior_err = 0.0f64;
    let mut ewma_err = 0.0f64;
    for o in offline {
        let measured = o.per_image.as_secs_f64();
        let p = prior.predict(&o.profile).as_secs_f64();
        let e = ewma.predict(&o.profile).as_secs_f64();
        prior_err += (p - measured).abs() / measured;
        ewma_err += (e - measured).abs() / measured;
        println!(
            "{:<18} {:>12.3} {:>15.3} {:>13.3}",
            o.kind.label(),
            measured * 1e3,
            p * 1e3,
            e * 1e3
        );
    }
    prior_err = 100.0 * prior_err / offline.len() as f64;
    ewma_err = 100.0 * ewma_err / offline.len() as f64;

    let profiles: Vec<CostProfile> = offline.iter().map(|o| o.profile.clone()).collect();
    let mut measured_order: Vec<usize> = (0..offline.len()).collect();
    measured_order.sort_by(|&a, &b| offline[a].per_image.cmp(&offline[b].per_image));
    let name = |order: &[usize]| {
        order
            .iter()
            .map(|&i| offline[i].kind.label())
            .collect::<Vec<_>>()
            .join(" < ")
    };
    let prior_order = rank_by_predicted(&prior, &profiles);
    let ewma_order = rank_by_predicted(ewma, &profiles);
    let prior_agree = prior_order
        .iter()
        .zip(measured_order.iter())
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\nmeasured rank (fastest first):   {}",
        name(&measured_order)
    );
    println!(
        "fpga-prior rank:                 {}   ({prior_agree}/{} positions match measured — \
         accelerator cycle order, reported not asserted)",
        name(&prior_order),
        offline.len()
    );
    println!("measured-EWMA rank:              {}", name(&ewma_order));
    assert_eq!(
        ewma_order, measured_order,
        "warmed MeasuredEwma over the FPGA prior must rank-order every backend as measured"
    );
    println!(
        "rank-order gate: warmed EWMA (fpga prior) orders all {} backends exactly as measured \
         (asserted)",
        offline.len()
    );
    println!(
        "predicted-vs-measured latency error: fpga prior {prior_err:.1}%, warmed EWMA \
         {ewma_err:.1}% (mean per-image, all backends)"
    );
    (prior_err, ewma_err)
}

struct SloClassRow {
    factor: f64,
    class: Priority,
    completed: u64,
    p50_ms: f64,
    p95_ms: f64,
    miss_pct: f64,
    sheds: u64,
    degraded: u64,
    mean_keep: f64,
    predicted_error_pct: f64,
}

/// Section 3: one SLO overload run against the tiered ladder. Returns the
/// per-class rows for the table and JSON.
fn run_slo(
    factor: f64,
    requests: usize,
    dense_capacity: f64,
    ewma: &Arc<MeasuredEwma>,
    images: &[heatvit_tensor::Tensor],
) -> Vec<SloClassRow> {
    let per_image = Duration::from_secs_f64(1.0 / dense_capacity.max(1.0));
    let batch_window = per_image * 8;
    // Normal's budget binds under overload (degradation is the point);
    // High's is generous enough that only a bug — not scheduler jitter —
    // could miss it.
    let normal_budget = (batch_window * 4).max(Duration::from_millis(8));
    let high_budget = (batch_window * 40).max(Duration::from_millis(100));
    let config = ServeConfig {
        max_batch: 8,
        queue_capacity: 32,
        idle_flush: Duration::from_micros(500),
        deadline_slack: Duration::from_millis(1),
        default_deadline: normal_budget,
        slo: SloPolicy {
            enabled: true,
            admission_slack: Duration::from_millis(1),
            shed_normal: true,
        },
        ..ServeConfig::default()
    };
    let models: Vec<Backend> = SLO_LADDER.into_iter().map(build_backend).collect();
    let server = Server::start_tiered(models, config, Arc::clone(ewma) as Arc<dyn LatencyModel>);

    let target = dense_capacity * factor;
    let interval = Duration::from_secs_f64(1.0 / target.max(1.0));
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(requests);
    let mut submitted = 0u64;
    let mut shed_at_submit = 0u64;
    for i in 0..requests {
        let due = started + interval.mul_f64(i as f64);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let high = i % HIGH_EVERY == 0;
        let request = InferRequest {
            image: images[i % images.len()].clone(),
            deadline: Instant::now() + if high { high_budget } else { normal_budget },
            priority: if high {
                Priority::High
            } else {
                Priority::Normal
            },
        };
        submitted += 1;
        match server.submit(request) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::Shed { request, .. }) => {
                assert_eq!(
                    request.priority,
                    Priority::Normal,
                    "only Normal requests may be shed"
                );
                shed_at_submit += 1;
            }
            Err(other) => panic!("unexpected submit refusal at {factor:.1}x: {other}"),
        }
    }
    for ticket in tickets {
        ticket.wait();
    }
    let report = server.shutdown();

    // Accepted-never-dropped still holds with admission in front.
    assert_eq!(report.completed + shed_at_submit, submitted);
    assert_eq!(report.sheds(), shed_at_submit);
    let high = report.class(Priority::High);
    assert_eq!(high.sheds, 0, "High must never be shed ({factor:.1}x)");
    assert_eq!(
        high.deadline_misses, 0,
        "High must never miss its deadline ({factor:.1}x)"
    );
    assert_eq!(high.degraded, 0, "High stays pinned to the dense level");
    if factor >= 2.0 {
        let normal = report.class(Priority::Normal);
        assert!(
            normal.degraded > 0,
            "overload at {factor:.1}x must degrade Normal down the keep-rate ladder"
        );
    }

    [Priority::High, Priority::Normal]
        .into_iter()
        .map(|class| {
            let c = report.class(class);
            SloClassRow {
                factor,
                class,
                completed: c.completed,
                p50_ms: c.p50_ms,
                p95_ms: c.p95_ms,
                miss_pct: c.miss_rate() * 100.0,
                sheds: c.sheds,
                degraded: c.degraded,
                mean_keep: c.mean_keep,
                predicted_error_pct: report.predicted_error_pct,
            }
        })
        .collect()
}

fn main() {
    let requests = requests_per_run();
    let images = synthetic_batch(IMAGE_POOL, 0);
    let sweep: &[f64] = if quick() { &QUICK_SWEEP } else { &SWEEP };
    println!(
        "heatvit serve_demo: closed-loop sweep, {requests} requests per run, \
         {IMAGE_POOL}-image pool, rates at {sweep:?} of offline batch capacity\n"
    );

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>9} {:>9} {:>7} {:>11} {:>17}",
        "backend",
        "target img/s",
        "offered",
        "served img/s",
        "p50(ms)",
        "p95(ms)",
        "miss%",
        "mean batch",
        "flush mb/dl/id/sd"
    );
    println!("{}", "-".repeat(116));

    // The online latency model the whole demo shares: FPGA cycle prior,
    // corrected by every measured execution (offline batches here, then
    // the tiered server's own batches).
    let ewma = Arc::new(MeasuredEwma::new(FpgaCycleModel::default(), 0.25));

    let mut offline: Vec<Offline> = Vec::new();
    let mut json_runs: Vec<String> = Vec::new();
    for kind in BackendKind::ALL {
        // Offline capacity + the bitwise parity reference for this backend.
        let model = build_backend(kind);
        let profile = model.cost_profile();
        let engine = Engine::builder(model).build();
        engine.infer_batch(&images); // warm the scratch pool
        let reference = engine.infer_batch(&images);
        let capacity = reference.throughput();
        ewma.observe(&profile, reference.len(), reference.elapsed);
        // Deadline budget: generous at low load, binding near saturation —
        // a full batch plus slack, floored for scheduler granularity.
        let per_image = Duration::from_secs_f64(1.0 / capacity.max(1.0));
        let deadline_budget = (per_image * 8 * 3).max(Duration::from_millis(5));

        for &fraction in sweep {
            let target = (capacity * fraction).max(1.0);
            let result = run_load(kind, target, requests, deadline_budget, &images, &reference);
            let r = &result.report;
            println!(
                "{:<18} {:>12.0} {:>12.0} {:>12.0} {:>9.2} {:>9.2} {:>6.1}% {:>11.1} {:>8}/{}/{}/{}",
                kind.label(),
                result.target_rate,
                result.offered_rate,
                r.throughput,
                r.p50_ms,
                r.p95_ms,
                r.miss_rate() * 100.0,
                r.mean_batch,
                r.flushes.max_batch,
                r.flushes.deadline,
                r.flushes.idle,
                r.flushes.shutdown,
            );
            json_runs.push(
                JsonObject::new()
                    .str("backend", kind.label())
                    .num("capacity_images_per_s", capacity)
                    .num("target_rate", result.target_rate)
                    .num("offered_rate", result.offered_rate)
                    .num("served_images_per_s", r.throughput)
                    .num("p50_ms", r.p50_ms)
                    .num("p95_ms", r.p95_ms)
                    .num("miss_pct", r.miss_rate() * 100.0)
                    .num("mean_batch", r.mean_batch)
                    .num("predicted_error_pct", r.predicted_error_pct)
                    .build(),
            );
        }
        offline.push(Offline {
            kind,
            capacity,
            per_image,
            profile,
        });
    }

    println!("\nzero dropped requests across the sweep (asserted: completed == submitted per run)");
    println!(
        "parity: every served response bitwise-identical to Engine::infer_batch on the same \
         image (logits and MACs asserted per request)"
    );
    println!(
        "deadline budget per backend: 3x a full max_batch of offline per-image time (>=5ms); \
         miss% reports responses resolved after their deadline — reported, never dropped"
    );

    let (prior_err, ewma_err) = latency_model_section(&offline, &ewma);

    // Section 3: the SLO overload sweep against the tiered ladder.
    let dense_capacity = offline
        .iter()
        .find(|o| o.kind == BackendKind::Dense)
        .expect("dense is always measured")
        .capacity;
    let slo_requests = requests.max(48);
    println!(
        "\nSLO-aware tiered serving: ladder {} (most accurate first), predictive admission on, \
         1-in-{HIGH_EVERY} requests High, {slo_requests} requests per run, overload = fraction \
         of dense capacity ({dense_capacity:.0} img/s)",
        SLO_LADDER
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(" > ")
    );
    println!(
        "{:>8} {:>8} {:>10} {:>9} {:>9} {:>7} {:>6} {:>9} {:>10}",
        "overload",
        "class",
        "completed",
        "p50(ms)",
        "p95(ms)",
        "miss%",
        "shed",
        "degraded",
        "mean-keep"
    );
    println!("{}", "-".repeat(84));
    let mut json_slo: Vec<String> = Vec::new();
    for factor in SLO_SWEEP {
        let rows = run_slo(factor, slo_requests, dense_capacity, &ewma, &images);
        for row in &rows {
            println!(
                "{:>7.1}x {:>8} {:>10} {:>9.2} {:>9.2} {:>6.1}% {:>6} {:>9} {:>10.3}",
                row.factor,
                row.class.label(),
                row.completed,
                row.p50_ms,
                row.p95_ms,
                row.miss_pct,
                row.sheds,
                row.degraded,
                row.mean_keep,
            );
            json_slo.push(
                JsonObject::new()
                    .num("overload", row.factor)
                    .str("class", row.class.label())
                    .int("completed", row.completed)
                    .num("p50_ms", row.p50_ms)
                    .num("p95_ms", row.p95_ms)
                    .num("miss_pct", row.miss_pct)
                    .int("sheds", row.sheds)
                    .int("degraded", row.degraded)
                    .num("mean_keep", row.mean_keep)
                    .num("predicted_error_pct", row.predicted_error_pct)
                    .build(),
            );
        }
        let error = rows[0].predicted_error_pct;
        println!(
            "         predicted-vs-measured latency error at {factor:.1}x: {error:.1}% \
             (mean per warmed batch, admission EWMA)"
        );
    }
    println!(
        "high-priority SLO held: zero sheds, zero deadline misses, zero degradations at every \
         overload (asserted)"
    );
    println!(
        "normal degrades before High sheds: under >=2x overload Normal moves down the keep-rate \
         ladder (mean-keep < 1, asserted) and is shed only when every level predicts a miss"
    );

    if let Some(path) = json::path_from_args() {
        let report = JsonObject::new()
            .str("bench", "serve_demo")
            .int("requests_per_run", requests as u64)
            .int("image_pool", IMAGE_POOL as u64)
            .num("latency_prior_error_pct", prior_err)
            .num("latency_ewma_error_pct", ewma_err)
            .raw("runs", json::array(json_runs))
            .raw("slo_runs", json::array(json_slo))
            .build();
        std::fs::write(&path, report + "\n")
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        println!("\nwrote {}", path.display());
    }
}
