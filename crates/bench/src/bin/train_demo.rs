//! The training demo: distillation + latency-sparsity selector tuning on
//! synthetic data, ending in the learned block-to-stage schedule compared
//! against the hand-placed two-stage baseline and an accuracy-vs-keep-rate
//! table.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin train_demo [-- --quick] [-- --joint]
//! ```
//!
//! `--quick` shrinks the dataset, the epoch counts, and the keep-target
//! sweep for CI smoke runs; the `HEATVIT_TRAIN_STEPS` environment variable
//! additionally caps the optimizer steps of every training phase (it
//! composes with `--quick`, mirroring `HEATVIT_RUN_ALL_SAMPLES`).
//! `--joint` additionally trains a `train_backbone: true` student at the
//! primary keep targets — selector *and* backbone weights both receive
//! gradients, the paper's joint finetuning phase — and reports its accuracy
//! row next to the frozen-backbone students.
//!
//! The binary asserts (not just prints) the three claims the CI train-smoke
//! job greps for: the composed loss decreases over the primary student's
//! epochs, the measured mean keep-rate lands within 0.05 of the configured
//! target, and the learned schedule survives `merge_similar` into a stage
//! layout printed next to the hand-placed baseline.

use heatvit_bench::{
    hand_placed_schedule, micro_backbone, BENCH_CLASSES, DEMO_SELECTOR_BLOCKS, DEMO_STAGE_KEEPS,
};
use heatvit_data::{SyntheticConfig, SyntheticDataset};
use heatvit_selector::{PrunedViT, PruningSchedule, TokenSelector};
use heatvit_train::{learned_schedule, TrainConfig, TrainRun, Trainer};
use heatvit_vit::flops::ModelComplexity;
use heatvit_vit::VisionTransformer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Tolerance of the keep-rate acceptance gate (absolute, on the mean over
/// selectors of per-stage keep rates).
const KEEP_TOLERANCE: f32 = 0.05;
/// Epochs averaged into the converged keep-rate measurement.
const KEEP_WINDOW: usize = 3;
/// `merge_similar` tolerance — the paper's 8.5 % stage-consolidation
/// threshold.
const MERGE_TOLERANCE: f32 = 0.085;

struct DemoScale {
    samples: usize,
    teacher_epochs: usize,
    student_epochs: usize,
    /// Per-stage keep-target pairs swept for the accuracy-vs-keep-rate
    /// table. The pair equal to [`DEMO_STAGE_KEEPS`] is the primary student
    /// whose epoch table and gates are reported in full.
    target_sweep: Vec<[f32; 2]>,
}

impl DemoScale {
    fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick") {
            Self {
                samples: 64,
                teacher_epochs: 14,
                student_epochs: 32,
                target_sweep: vec![DEMO_STAGE_KEEPS, [0.5, 0.5]],
            }
        } else {
            Self {
                samples: 128,
                teacher_epochs: 16,
                student_epochs: 32,
                target_sweep: vec![[0.9, 0.8], DEMO_STAGE_KEEPS, [0.5, 0.5]],
            }
        }
    }
}

/// `HEATVIT_TRAIN_STEPS`: optional per-phase optimizer-step cap.
fn step_cap() -> Option<u64> {
    let raw = std::env::var("HEATVIT_TRAIN_STEPS").ok()?;
    let n: u64 =
        raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            panic!("HEATVIT_TRAIN_STEPS must be a positive integer, got {raw:?}")
        });
    Some(n)
}

fn student_config(targets: &[f32; 2], epochs: usize, max_steps: Option<u64>) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 4,
        peak_lr: 1e-2,
        min_lr: 3e-3,
        target_keep: targets.to_vec(),
        sparsity_weight: 2.0,
        decisiveness_weight: 4.0,
        distill_alpha: 0.5,
        distill_temperature: 2.0,
        train_backbone: false,
        max_steps,
        seed: 7,
        ..TrainConfig::default()
    }
}

/// The joint-finetuning configuration (`--joint`): same objective as the
/// selector-tuning students, but the backbone unfreezes too, at a gentler
/// peak learning rate so the distilled backbone is refined rather than
/// re-initialized.
fn joint_config(targets: &[f32; 2], epochs: usize, max_steps: Option<u64>) -> TrainConfig {
    TrainConfig {
        peak_lr: 3e-3,
        min_lr: 1e-3,
        train_backbone: true,
        ..student_config(targets, epochs, max_steps)
    }
}

/// A fresh student: the frozen teacher backbone with untrained selectors at
/// the hand-placed demo blocks.
fn make_student(teacher: &VisionTransformer, seed: u64) -> PrunedViT {
    let mut rng = StdRng::seed_from_u64(seed);
    let dim = teacher.config().embed_dim;
    let heads = teacher.config().num_heads;
    let mut student = PrunedViT::new(teacher.clone());
    for &block in &DEMO_SELECTOR_BLOCKS {
        student.insert_selector(block, TokenSelector::new(dim, heads, &mut rng));
    }
    student
}

fn print_epoch_table(run: &TrainRun) {
    println!("{}", heatvit_train::TrainReport::table_header());
    println!("{}", "-".repeat(96));
    for r in &run.reports {
        println!("{r}");
    }
    if run.capped {
        println!("(stopped by HEATVIT_TRAIN_STEPS after {} steps)", run.steps);
    }
}

/// One row of the schedule-comparison table.
fn schedule_row(label: &str, schedule: &PruningSchedule, config: &heatvit_vit::ViTConfig) {
    let stages = if schedule.is_empty() {
        "none (dense)".to_string()
    } else {
        schedule
            .placements()
            .iter()
            .map(|p| format!("b{}@{:.2}", p.block, p.target_keep))
            .collect::<Vec<_>>()
            .join(" ")
    };
    let macs = ModelComplexity::with_schedule(config, &schedule.tokens_per_block(config));
    let dense = ModelComplexity::dense(config);
    println!(
        "{:<16} {:<22} {:>10.3} {:>14.3} {:>11.2} {:>12.2}x",
        label,
        stages,
        schedule.mean_keep(config.depth),
        schedule.macs_weighted_keep(config),
        macs.total_macs() as f64 / 1e6,
        dense.total_macs() as f64 / macs.total_macs().max(1) as f64,
    );
}

fn main() {
    let scale = DemoScale::from_args();
    let cap = step_cap();
    let mut teacher = micro_backbone(0);
    let vit_config = teacher.config().clone();
    assert_eq!(vit_config.num_classes, BENCH_CLASSES);

    let dataset = SyntheticDataset::generate(SyntheticConfig::micro(), scale.samples, 11);
    let (train, val) = dataset.split(0.25);
    println!(
        "heatvit train_demo: {} train / {} val synthetic 32x32 images, µDeiT backbone\n",
        train.len(),
        val.len()
    );

    // Phase 1 — dense teacher (plain CE). The paper starts from a pretrained
    // backbone; here the pretraining is part of the demo.
    println!(
        "[1/3] dense teacher pretraining ({} epochs)",
        scale.teacher_epochs
    );
    let teacher_run = Trainer::new(TrainConfig {
        epochs: scale.teacher_epochs,
        batch_size: 4,
        peak_lr: 1e-2,
        min_lr: 1e-3,
        distill_alpha: 0.0,
        sparsity_weight: 0.0,
        train_backbone: true,
        max_steps: cap,
        seed: 3,
        ..TrainConfig::default()
    })
    .fit_dense(&mut teacher, &train, &val);
    print_epoch_table(&teacher_run);
    let teacher_top1 = teacher_run.last().val_top1;
    println!();

    // Phase 2 — selector tuning sweep: one student per keep-target pair,
    // each distilled against the frozen teacher under the Eq. 20 penalty.
    println!(
        "[2/3] selector tuning (distillation + latency-sparsity), {} target pair(s)",
        scale.target_sweep.len()
    );
    let mut sweep: Vec<([f32; 2], TrainRun, PrunedViT)> = Vec::new();
    for (i, targets) in scale.target_sweep.iter().enumerate() {
        let mut student = make_student(&teacher, 0xBEEF + i as u64);
        let run = Trainer::new(student_config(targets, scale.student_epochs, cap)).fit(
            &mut student,
            Some(&teacher),
            &train,
            &val,
        );
        if *targets == DEMO_STAGE_KEEPS {
            println!(
                "primary student (targets {:.2}/{:.2}):",
                targets[0], targets[1]
            );
            print_epoch_table(&run);
        }
        sweep.push((*targets, run, student));
    }
    println!();

    // Optional joint finetuning: the same objective with the backbone
    // unfrozen (`train_backbone: true`), at the primary keep targets.
    let joint = if std::env::args().any(|a| a == "--joint") {
        println!(
            "[2b/3] joint finetuning (--joint: backbone + selectors, targets {:.2}/{:.2})",
            DEMO_STAGE_KEEPS[0], DEMO_STAGE_KEEPS[1]
        );
        let mut student = make_student(&teacher, 0xD0E);
        let run = Trainer::new(joint_config(&DEMO_STAGE_KEEPS, scale.student_epochs, cap)).fit(
            &mut student,
            Some(&teacher),
            &train,
            &val,
        );
        print_epoch_table(&run);
        println!();
        Some((run, student))
    } else {
        None
    };

    let (primary_targets, primary_run, primary_student) = sweep
        .iter()
        .find(|(t, _, _)| *t == DEMO_STAGE_KEEPS)
        .expect("the sweep always contains the hand-placed targets");
    let first = primary_run.reports.first().expect("at least one epoch");
    let last = primary_run.last();
    // A HEATVIT_TRAIN_STEPS cap bounds wall-clock, not convergence — the
    // gates are reported but only enforced on uncapped runs.
    let gates_enforced = !primary_run.capped;
    if !gates_enforced {
        println!("step-capped run: convergence gates reported, not enforced");
    }

    // Gate 1 — the composed distillation + sparsity loss went down.
    let decreased = last.loss < first.loss;
    assert!(
        decreased || !gates_enforced,
        "composed loss must decrease: first {:.4}, last {:.4}",
        first.loss,
        last.loss
    );
    println!(
        "loss {} over training: {:.4} -> {:.4} (CE {:.4} -> {:.4}, \
         distill {:.4} -> {:.4}, sparsity {:.4} -> {:.4})",
        if decreased {
            "decreased"
        } else {
            "did not decrease"
        },
        first.loss,
        last.loss,
        first.ce,
        last.ce,
        first.distill,
        last.distill,
        first.sparsity,
        last.sparsity
    );

    // Gate 2 — measured keep rates reached the configured target. Averaged
    // over the final epochs: the rank targets keep jiggling boundary tokens
    // while the optimizer still steps, so one epoch is a noisy sample of
    // the converged policy.
    let measured_keep = primary_run.converged_keep(KEEP_WINDOW);
    let target_mean = (primary_targets[0] + primary_targets[1]) / 2.0;
    let measured_mean = measured_keep.iter().sum::<f32>() / measured_keep.len() as f32;
    let delta = (measured_mean - target_mean).abs();
    assert!(
        delta <= KEEP_TOLERANCE || !gates_enforced,
        "mean keep-rate {measured_mean:.3} missed target {target_mean:.3} by {delta:.3} \
         (> {KEEP_TOLERANCE})"
    );
    println!(
        "mean keep-rate {:.3} {} {:.2} of target {:.3} \
         (per-stage {} vs targets {:.2}/{:.2}, mean of final {KEEP_WINDOW} epochs)",
        measured_mean,
        if delta <= KEEP_TOLERANCE {
            "within"
        } else {
            "outside"
        },
        KEEP_TOLERANCE,
        target_mean,
        measured_keep
            .iter()
            .map(|k| format!("{k:.3}"))
            .collect::<Vec<_>>()
            .join("/"),
        primary_targets[0],
        primary_targets[1]
    );
    println!();

    // Phase 3 — block-to-stage pipeline: learned keep rates -> cumulative
    // schedule -> merge_similar, printed next to the hand-placed baseline.
    println!("[3/3] learned stage schedule vs hand-placed baseline");
    let learned = learned_schedule(&primary_student.selector_blocks(), &measured_keep);
    let merged = learned.merge_similar(MERGE_TOLERANCE);
    println!(
        "{:<16} {:<22} {:>10} {:>14} {:>11} {:>12}",
        "schedule", "stages (cumulative)", "mean-keep", "weighted-keep", "MMACs", "MAC-speedup"
    );
    println!("{}", "-".repeat(92));
    schedule_row("learned", &learned, &vit_config);
    schedule_row("learned-merged", &merged, &vit_config);
    schedule_row("hand-placed", &hand_placed_schedule(), &vit_config);
    println!(
        "merged {} learned stage(s) into {} (merge_similar tolerance {:.3})\n",
        learned.len(),
        merged.len(),
        MERGE_TOLERANCE
    );

    // The accuracy-vs-keep-rate table over the whole sweep.
    println!("accuracy vs keep-rate (validation, deterministic hard pruning):");
    println!(
        "{:<22} {:>13} {:>9} {:>12} {:>11} {:>12}",
        "variant", "measured-keep", "val-top1", "final-tokens", "MMACs", "MAC-speedup"
    );
    println!("{}", "-".repeat(84));
    let dense_macs = ModelComplexity::dense(&vit_config).total_macs() as f64;
    println!(
        "{:<22} {:>13.3} {:>8.1}% {:>12.1} {:>11.2} {:>11.2}x",
        "teacher (dense)",
        1.0,
        teacher_top1 * 100.0,
        vit_config.num_tokens() as f32,
        dense_macs / 1e6,
        1.0
    );
    let accuracy_row = |label: String, run: &TrainRun, student: &PrunedViT| {
        let r = run.last();
        let keep = run.converged_keep(KEEP_WINDOW);
        let sched = learned_schedule(&student.selector_blocks(), &keep);
        let macs = ModelComplexity::with_schedule(&vit_config, &sched.tokens_per_block(&vit_config))
            .total_macs() as f64;
        println!(
            "{:<22} {:>13.3} {:>8.1}% {:>12.1} {:>11.2} {:>11.2}x",
            label,
            keep.iter().sum::<f32>() / keep.len().max(1) as f32,
            r.val_top1 * 100.0,
            r.final_tokens,
            macs / 1e6,
            dense_macs / macs.max(1.0)
        );
    };
    for (targets, run, student) in &sweep {
        accuracy_row(
            format!("student {:.2}/{:.2}", targets[0], targets[1]),
            run,
            student,
        );
    }
    if let Some((run, student)) = &joint {
        accuracy_row(
            format!(
                "joint {:.2}/{:.2} (bb)",
                DEMO_STAGE_KEEPS[0], DEMO_STAGE_KEEPS[1]
            ),
            run,
            student,
        );
    }
    if gates_enforced {
        println!(
            "\nall gates passed: decreasing loss, keep-rate within {KEEP_TOLERANCE} of target, \
             merged stage schedule printed against the hand-placed baseline"
        );
    } else {
        println!("\nstep-capped run complete (gates reported above, not enforced)");
    }
}
