//! The variant throughput table: dense vs. adaptive-pruned vs.
//! static-pruned vs. int8-quantized (dense and adaptive), one
//! `heatvit::Engine` per variant over the same synthetic batch.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin run_all
//! ```
//!
//! Before timing, the binary asserts batched/single parity for every
//! variant, so the table is only printed for verified-identical arithmetic.
//! The int8 rows report packed-DSP-equivalent MACs (raw ÷ ~1.9, paper
//! Section V-C) and must agree with the float dense model on ≥95 % of
//! top-1 predictions — both are asserted, not just printed.

use heatvit::{Engine, InferenceModel};
use heatvit_bench::{
    adaptive_pruned, micro_backbone, quantized_adaptive, quantized_dense, static_pruned,
    synthetic_batch,
};
use heatvit_tensor::Tensor;

const BATCH: usize = 32;
const WARMUP_BATCHES: usize = 2;
/// Minimum top-1 agreement of the int8 rows against the float dense row.
const INT8_MIN_AGREEMENT: f64 = 0.95;

struct Row {
    variant: String,
    throughput: f64,
    ms_per_image: f64,
    mmacs: f64,
    mac_speedup: f64,
    final_tokens: f64,
    predictions: Vec<usize>,
}

fn measure<M: InferenceModel>(model: M, images: &[Tensor]) -> Row {
    let dense_macs = model.dense_macs() as f64;
    let mut engine = Engine::new(model);

    // Parity gate: every batched row must equal the per-image path bitwise.
    let probe = engine.infer_batch(&images[..4.min(images.len())]);
    for (i, image) in images[..probe.len()].iter().enumerate() {
        let single = engine.infer_one(image);
        assert_eq!(
            probe.logits.row(i),
            single.logits.data(),
            "batched/single divergence in {}",
            engine.model().variant()
        );
    }

    for _ in 0..WARMUP_BATCHES {
        engine.infer_batch(images);
    }
    let out = engine.infer_batch(images);
    Row {
        variant: engine.model().variant().to_string(),
        throughput: out.throughput(),
        ms_per_image: out.elapsed.as_secs_f64() * 1e3 / out.len() as f64,
        mmacs: out.mean_macs() / 1e6,
        mac_speedup: dense_macs / out.mean_macs().max(1.0),
        final_tokens: *out.mean_tokens_per_block().last().unwrap_or(&0.0),
        predictions: out.predictions(),
    }
}

fn agreement(row: &Row, reference: &Row) -> f64 {
    let same = row
        .predictions
        .iter()
        .zip(reference.predictions.iter())
        .filter(|(a, b)| a == b)
        .count();
    same as f64 / reference.predictions.len().max(1) as f64
}

fn main() {
    let images = synthetic_batch(BATCH, 0);
    println!(
        "heatvit run_all: micro backbone, {} synthetic 32x32 images per batch\n",
        images.len()
    );

    let backbone = micro_backbone(0);
    let rows = [
        measure(micro_backbone(0), &images),
        measure(adaptive_pruned(micro_backbone(0), 0), &images),
        measure(static_pruned(micro_backbone(0)), &images),
        measure(quantized_dense(&backbone), &images),
        measure(quantized_adaptive(&backbone), &images),
    ];

    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "variant",
        "images/s",
        "ms/image",
        "MMACs/img",
        "MAC-speedup",
        "final tokens",
        "top1-vs-f32"
    );
    println!("{}", "-".repeat(95));
    for r in &rows {
        let agree = agreement(r, &rows[0]);
        println!(
            "{:<18} {:>12.1} {:>10.3} {:>12.2} {:>11.2}x {:>14.1} {:>11.1}%",
            r.variant,
            r.throughput,
            r.ms_per_image,
            r.mmacs,
            r.mac_speedup,
            r.final_tokens,
            agree * 100.0
        );
        if r.variant.starts_with("int8") {
            assert!(
                agree >= INT8_MIN_AGREEMENT,
                "{}: top-1 agreement {agree:.3} below the {INT8_MIN_AGREEMENT} gate",
                r.variant
            );
        }
    }
    println!("\nparity: batched logits bitwise-identical to per-image inference for all variants");
    println!(
        "int8 rows: packed-DSP-equivalent MACs (raw / {:.1}), top-1 agreement vs. float dense >= {:.0}% asserted",
        heatvit_quant::DSP_PACKING_FACTOR,
        INT8_MIN_AGREEMENT * 100.0
    );
}
