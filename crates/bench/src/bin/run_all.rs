fn main() { println!("placeholder"); }
