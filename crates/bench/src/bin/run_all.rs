//! The variant throughput table: every [`BackendKind`] (dense,
//! adaptive-pruned, static-pruned, the training-free cls-attn /
//! token-merge / topk-attn family, int8-dense, int8-adaptive) driven as a
//! type-erased `Engine<Backend>` over the same synthetic batch, measured
//! sequentially and sharded across a 4-thread worker pool. One measurement
//! loop, eight rows — no per-backend code.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin run_all [-- --quick]
//! ```
//!
//! `--quick` shrinks the batch for CI smoke runs; the
//! `HEATVIT_RUN_ALL_SAMPLES` environment variable overrides the batch size
//! outright (it wins over `--quick`). `--json <path>` additionally writes
//! the table as a machine-readable report (one object per backend:
//! images/s sequential and sharded, ms/image, MMACs, MAC speedup, final
//! tokens, predicted FPGA latency, top-1 agreement, plus a `telemetry`
//! snapshot of every engine's per-variant counters) — the committed
//! `BENCH_run_all.json` at the repo root is produced this way, through the
//! same `json::Emitter` pipeline as `serve_demo`.
//!
//! The `fpga-ms` column is the `heatvit-fpga` cycle model's prediction for
//! one image on the paper's ZCU102 tiled-GEMM geometry — the accelerator
//! latency the cost profiles imply, printed beside host wall-clock so the
//! two cost orderings can be compared (they differ: int8 packing wins
//! cycles on DSPs but loses wall-clock on the host's float units).
//!
//! Before timing, the binary asserts batched/single parity for every
//! variant and sharded/sequential parity for the multi-threaded engine, so
//! the table is only printed for verified-identical arithmetic. The int8
//! rows report packed-DSP-equivalent MACs (raw ÷ ~1.9, paper Section V-C)
//! and must agree with the float dense model on ≥95 % of top-1 predictions.
//! The training-free rows carry their own gate: cls-attn and token-merge
//! are held to the same 95 % agreement budget, and token mergence must
//! disagree with dense no more often than the hard drop at the identical
//! keep rate — all asserted, not just printed.

use heatvit::telemetry::Registry;
use heatvit::{BackendKind, Engine, InferenceModel, LatencyModel};
use heatvit_bench::json::{self, Emitter, JsonObject};
use heatvit_bench::{build_backend, synthetic_batch};
use heatvit_fpga::FpgaCycleModel;
use heatvit_tensor::Tensor;
use std::sync::Arc;

const DEFAULT_BATCH: usize = 32;
const QUICK_BATCH: usize = 8;
const WARMUP_BATCHES: usize = 2;
/// Worker-pool size of the sharded measurement (the `threads-x` column).
const PAR_THREADS: usize = 4;
/// Minimum top-1 agreement of the int8 rows against the float dense row.
/// Enforced in whole predictions — see [`allowed_mismatches`].
const INT8_MIN_AGREEMENT: f64 = 0.95;

/// The 95 % gate translated to a mismatch budget for the actual batch size,
/// always tolerating at least one disagreement so the `--quick` CI batch
/// doesn't silently demand bit-perfect agreement (at 8 images a single flip
/// is 87.5 %, which the fractional gate would reject).
fn allowed_mismatches(batch: usize) -> usize {
    ((batch as f64 * (1.0 - INT8_MIN_AGREEMENT)).floor() as usize).max(1)
}

struct Row {
    kind: BackendKind,
    throughput: f64,
    throughput_par: f64,
    ms_per_image: f64,
    mmacs: f64,
    mac_speedup: f64,
    final_tokens: f64,
    /// Predicted single-image latency on the paper's ZCU102 accelerator
    /// model (`FpgaCycleModel` over this backend's cost profile) — a cycle
    /// count at 150 MHz, not host wall-clock.
    fpga_ms: f64,
    predictions: Vec<usize>,
}

impl Row {
    /// Sharded-over-sequential throughput gain (the `threads-x` column).
    fn thread_scaling(&self) -> f64 {
        self.throughput_par / self.throughput.max(1e-12)
    }
}

/// Batch size: `HEATVIT_RUN_ALL_SAMPLES` beats `--quick` beats the default.
fn batch_size() -> usize {
    if let Ok(raw) = std::env::var("HEATVIT_RUN_ALL_SAMPLES") {
        let n: usize = raw.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            panic!("HEATVIT_RUN_ALL_SAMPLES must be a positive integer, got {raw:?}")
        });
        return n;
    }
    if std::env::args().any(|a| a == "--quick") {
        QUICK_BATCH
    } else {
        DEFAULT_BATCH
    }
}

/// One kind's row: the type-erased backend measured sequentially and
/// through the 4-thread shard, with batched/single and sharded/sequential
/// parity asserted before either number is reported.
fn measure(kind: BackendKind, images: &[Tensor], registry: &Arc<Registry>) -> Row {
    let model = build_backend(kind);
    let dense_macs = InferenceModel::dense_macs(&model) as f64;
    let fpga_ms = FpgaCycleModel::default()
        .predict(&model.cost_profile())
        .as_secs_f64()
        * 1e3;
    let engine = Engine::builder(model)
        .telemetry(Arc::clone(registry))
        .build();

    // Parity gate: every batched row must equal the per-image path bitwise.
    let probe = engine.infer_batch(&images[..4.min(images.len())]);
    for (i, image) in images[..probe.len()].iter().enumerate() {
        let single = engine.infer_one(image);
        assert_eq!(
            probe.logits.row(i),
            single.logits.data(),
            "batched/single divergence in {kind}"
        );
    }

    for _ in 0..WARMUP_BATCHES {
        engine.infer_batch(images);
    }
    let out = engine.infer_batch(images);

    // The sharded engine must merge to the exact sequential bits before its
    // throughput is worth reporting; it reuses the same model instance.
    let par_engine = Engine::builder(engine.into_model())
        .threads(PAR_THREADS)
        .telemetry(Arc::clone(registry))
        .build();
    for _ in 0..WARMUP_BATCHES {
        par_engine.infer_batch(images);
    }
    let par_out = par_engine.infer_batch(images);
    assert_eq!(
        par_out.logits.data(),
        out.logits.data(),
        "sharded/sequential divergence in {kind}"
    );
    assert_eq!(par_out.macs, out.macs);

    Row {
        kind,
        throughput: out.throughput(),
        throughput_par: par_out.throughput(),
        ms_per_image: out.elapsed.as_secs_f64() * 1e3 / out.len() as f64,
        mmacs: out.mean_macs() / 1e6,
        mac_speedup: dense_macs / out.mean_macs().max(1.0),
        final_tokens: *out.mean_tokens_per_block().last().unwrap_or(&0.0),
        fpga_ms,
        predictions: out.predictions(),
    }
}

fn agreement(row: &Row, reference: &Row) -> f64 {
    let same = row
        .predictions
        .iter()
        .zip(reference.predictions.iter())
        .filter(|(a, b)| a == b)
        .count();
    same as f64 / reference.predictions.len().max(1) as f64
}

fn mismatches(row: &Row, reference: &Row) -> usize {
    row.predictions
        .iter()
        .zip(reference.predictions.iter())
        .filter(|(a, b)| a != b)
        .count()
}

fn main() {
    let images = synthetic_batch(batch_size(), 0);
    let cores = heatvit::EngineConfig::auto().threads.resolve();
    println!(
        "heatvit run_all: micro backbone, {} synthetic 32x32 images per batch, \
         {PAR_THREADS}-thread shard on {cores} hardware thread(s)\n",
        images.len()
    );

    // One registry spans every measured engine: the embedded telemetry
    // snapshot carries per-variant batch/image/inference-time counters
    // alongside the wall-clock table.
    let registry = Registry::new();

    // The table rows ARE the kind registry: adding a backend to
    // `BackendKind::ALL` adds its row here with no further changes.
    let rows: Vec<Row> = BackendKind::ALL
        .into_iter()
        .map(|kind| measure(kind, &images, &registry))
        .collect();
    let reference = &rows[0];
    assert_eq!(
        reference.kind,
        BackendKind::Dense,
        "BackendKind::ALL must lead with the dense agreement reference"
    );

    println!(
        "{:<18} {:>12} {:>12} {:>10} {:>10} {:>12} {:>12} {:>14} {:>10} {:>12}",
        "variant",
        "images/s(1t)",
        format!("images/s({PAR_THREADS}t)"),
        "threads-x",
        "ms/image",
        "MMACs/img",
        "MAC-speedup",
        "final tokens",
        "fpga-ms",
        "top1-vs-f32"
    );
    println!("{}", "-".repeat(131));
    for r in &rows {
        let agree = agreement(r, reference);
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>9.2}x {:>10.3} {:>12.2} {:>11.2}x {:>14.1} {:>10.3} {:>11.1}%",
            r.kind.label(),
            r.throughput,
            r.throughput_par,
            r.thread_scaling(),
            r.ms_per_image,
            r.mmacs,
            r.mac_speedup,
            r.final_tokens,
            r.fpga_ms,
            agree * 100.0
        );
        if r.kind.is_quantized() || matches!(r.kind, BackendKind::ClsAttn | BackendKind::TokenMerge)
        {
            let missed = mismatches(r, reference);
            let allowed = allowed_mismatches(reference.predictions.len());
            assert!(
                missed <= allowed,
                "{}: {missed} top-1 disagreements vs. float dense exceed the \
                 {INT8_MIN_AGREEMENT} gate's budget of {allowed}",
                r.kind
            );
        }
    }

    // The paper's mergence claim, held at the table level: folding pruned
    // tokens into their nearest kept neighbour must not lose more top-1
    // agreement than discarding them outright at the identical keep rate.
    let by_kind = |kind| rows.iter().find(|r| r.kind == kind).expect("row exists");
    let cls_missed = mismatches(by_kind(BackendKind::ClsAttn), reference);
    let merge_missed = mismatches(by_kind(BackendKind::TokenMerge), reference);
    assert!(
        merge_missed <= cls_missed,
        "token mergence disagreed with dense {merge_missed} time(s) but the cls-attn \
         hard drop only {cls_missed} — mergence must preserve at least as much accuracy"
    );
    println!(
        "\nparity: batched logits bitwise-identical to per-image inference for all variants, \
         and the {PAR_THREADS}-thread sharded engine bitwise-identical to sequential"
    );
    println!(
        "fpga-ms: FpgaCycleModel prediction per image on the paper's ZCU102 geometry (tiled GEMM \
         cycles at 150 MHz, int8 rows DSP-packed) — accelerator latency, not host wall-clock"
    );
    println!(
        "int8 rows: packed-DSP-equivalent MACs (raw / {:.1}), top-1 agreement vs. float dense \
         asserted ({:.0}% gate = at most {} mismatch(es) in {} images)",
        heatvit_quant::DSP_PACKING_FACTOR,
        INT8_MIN_AGREEMENT * 100.0,
        allowed_mismatches(images.len()),
        images.len()
    );
    println!(
        "training-free rows: cls-attn and token-merge held to the same top-1 agreement \
         budget, and mergence asserted to disagree with dense no more often than the \
         hard drop ({merge_missed} vs {cls_missed} mismatch(es))"
    );
    if cores < PAR_THREADS {
        println!(
            "note: only {cores} hardware thread(s) available — the threads-x column cannot \
             show real scaling on this machine"
        );
    } else if let Some(adaptive) = rows.iter().find(|r| r.kind == BackendKind::AdaptivePruned) {
        // The ROADMAP target is measurable here; flag (non-fatally — wall
        // clocks flake) if sharding fails to deliver it.
        if adaptive.thread_scaling() < 1.5 {
            println!(
                "WARNING: adaptive-pruned threads-x {:.2}x is below the 1.5x roadmap target \
                 despite {cores} hardware threads — check for accidental serialization",
                adaptive.thread_scaling()
            );
        }
    }

    let backends = json::array(rows.iter().map(|r| {
        JsonObject::new()
            .str("variant", r.kind.label())
            .num("images_per_s", r.throughput)
            .num("images_per_s_par", r.throughput_par)
            .num("thread_scaling", r.thread_scaling())
            .num("ms_per_image", r.ms_per_image)
            .num("mmacs_per_image", r.mmacs)
            .num("mac_speedup", r.mac_speedup)
            .num("final_tokens", r.final_tokens)
            .num("predicted_fpga_ms", r.fpga_ms)
            .num("top1_agreement_vs_f32", agreement(r, reference))
            .build()
    }));
    Emitter::new("run_all")
        .int("batch", images.len() as u64)
        .int("par_threads", PAR_THREADS as u64)
        .int("hardware_threads", cores as u64)
        .raw("backends", backends)
        .metrics("telemetry", &registry.snapshot())
        .write_if_requested();
}
