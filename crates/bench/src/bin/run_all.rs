//! The variant throughput table: dense vs. adaptive-pruned vs.
//! static-pruned, one `heatvit::Engine` per variant over the same synthetic
//! batch.
//!
//! ```text
//! cargo run --release -p heatvit-bench --bin run_all
//! ```
//!
//! Before timing, the binary asserts batched/single parity for every
//! variant, so the table is only printed for verified-identical arithmetic.

use heatvit::{Engine, InferenceModel};
use heatvit_bench::{adaptive_pruned, micro_backbone, static_pruned, synthetic_batch};
use heatvit_tensor::Tensor;

const BATCH: usize = 32;
const WARMUP_BATCHES: usize = 2;

struct Row {
    variant: String,
    throughput: f64,
    ms_per_image: f64,
    mmacs: f64,
    mac_speedup: f64,
    final_tokens: f64,
}

fn measure<M: InferenceModel>(model: M, images: &[Tensor]) -> Row {
    let dense_macs = model.dense_macs() as f64;
    let mut engine = Engine::new(model);

    // Parity gate: every batched row must equal the per-image path bitwise.
    let probe = engine.infer_batch(&images[..4.min(images.len())]);
    for (i, image) in images[..probe.len()].iter().enumerate() {
        let single = engine.infer_one(image);
        assert_eq!(
            probe.logits.row(i),
            single.logits.data(),
            "batched/single divergence in {}",
            engine.model().variant()
        );
    }

    for _ in 0..WARMUP_BATCHES {
        engine.infer_batch(images);
    }
    let out = engine.infer_batch(images);
    Row {
        variant: engine.model().variant().to_string(),
        throughput: out.throughput(),
        ms_per_image: out.elapsed.as_secs_f64() * 1e3 / out.len() as f64,
        mmacs: out.mean_macs() / 1e6,
        mac_speedup: dense_macs / out.mean_macs().max(1.0),
        final_tokens: *out.mean_tokens_per_block().last().unwrap_or(&0.0),
    }
}

fn main() {
    let images = synthetic_batch(BATCH, 0);
    println!(
        "heatvit run_all: micro backbone, {} synthetic 32x32 images per batch\n",
        images.len()
    );

    let rows = [
        measure(micro_backbone(0), &images),
        measure(adaptive_pruned(micro_backbone(0), 0), &images),
        measure(static_pruned(micro_backbone(0)), &images),
    ];

    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>12} {:>14}",
        "variant", "images/s", "ms/image", "MMACs/img", "MAC-speedup", "final tokens"
    );
    println!("{}", "-".repeat(82));
    for r in &rows {
        println!(
            "{:<18} {:>12.1} {:>10.3} {:>12.2} {:>11.2}x {:>14.1}",
            r.variant, r.throughput, r.ms_per_image, r.mmacs, r.mac_speedup, r.final_tokens
        );
    }
    println!("\nparity: batched logits bitwise-identical to per-image inference for all variants");
}
