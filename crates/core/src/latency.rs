//! Predicted per-request cost as a first-class signal: [`CostProfile`]
//! (what a backend expects to compute) and the [`LatencyModel`] trait
//! (how long that computation takes on some execution substrate).
//!
//! The serving layer admits, degrades, and sheds requests based on
//! *predicted* latency; the offline harnesses rank backends by it. Three
//! families of model implement the trait:
//!
//! * `FpgaCycleModel` (in `heatvit-fpga`) — the paper's tiled GEMM-engine
//!   cycle accounting (Fig. 8, Tables III–IV) with int8 DSP packing;
//! * [`MacProxyModel`] — latency proportional to the profile's MAC count
//!   plus a fixed per-image overhead; hardware-agnostic, exact on any
//!   machine whose per-MAC cost is roughly constant across backends;
//! * [`MeasuredEwma`] — an online model that starts from any prior
//!   [`LatencyModel`] and converges to the measured wall-clock of the
//!   machine actually serving, via an exponentially weighted moving
//!   average per backend variant.

use heatvit_vit::ViTConfig;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::time::Duration;

/// What one inference through a backend is *expected* to compute, exposed
/// without running inference: per-block token counts, the MAC estimate at
/// those counts, and which arithmetic family executes them.
///
/// Produced by [`crate::InferenceModel::cost_profile`]. For input-adaptive
/// backends the token counts are nominal expectations (`exact == false`);
/// for dense and statically pruned backends they are the counts every
/// image actually sees (`exact == true`).
#[derive(Debug, Clone)]
pub struct CostProfile {
    /// The backend variant label this profile describes (the
    /// [`crate::InferenceModel::variant`] string — latency models key
    /// online state by it).
    pub variant: String,
    /// The backbone architecture the tokens flow through.
    pub config: ViTConfig,
    /// Expected token count entering each encoder block.
    pub tokens_per_block: Vec<usize>,
    /// `true` when `tokens_per_block` is input-independent (dense, static
    /// pruning); `false` for nominal expectations of adaptive backends.
    pub exact: bool,
    /// `true` for the int8 integer pipeline (DSP packing applies on
    /// packed-arithmetic substrates).
    pub quantized: bool,
    /// MAC estimate at these token counts. Packed-DSP-equivalent for
    /// quantized profiles, matching what the backend itself reports.
    pub macs: u64,
}

impl CostProfile {
    /// A dense profile for `config`: full tokens in every block.
    pub fn dense(variant: &str, config: &ViTConfig, macs: u64) -> Self {
        Self {
            variant: variant.to_string(),
            config: config.clone(),
            tokens_per_block: vec![config.num_tokens(); config.depth],
            exact: true,
            quantized: false,
            macs,
        }
    }

    /// Mean token count across blocks as a fraction of the dense count —
    /// the accuracy *proxy* of this profile (1.0 = every block sees every
    /// token; lower = more aggressive pruning, typically lower accuracy).
    ///
    /// A proxy, not a measurement: it tracks how much evidence survives to
    /// the classifier, which is what token pruning trades accuracy for.
    pub fn keep_fraction(&self) -> f64 {
        if self.tokens_per_block.is_empty() {
            return 1.0;
        }
        let dense = (self.config.num_tokens() * self.tokens_per_block.len()) as f64;
        self.tokens_per_block.iter().sum::<usize>() as f64 / dense.max(1.0)
    }
}

/// Predicts how long one inference of a given [`CostProfile`] takes.
///
/// # Contract
///
/// * [`predict`](LatencyModel::predict) returns the expected *service* time
///   of one image (no queueing), strictly positive, and must be monotone in
///   cost: a profile with more work on the model's substrate never predicts
///   lower latency. It must be cheap (microseconds, no inference) — the
///   serving layer calls it on every admission under its queue lock.
/// * [`observe`](LatencyModel::observe) feeds a measured execution back:
///   `measured` wall-clock for a batch of `images` inferences of `profile`.
///   Offline models ignore it (the default); online models fold it in.
///   Takes `&self`: implementations needing state use interior mutability,
///   because servers share one model across submitter threads.
/// * [`predict_batch`](LatencyModel::predict_batch) scales the per-image
///   prediction to a batch executed across `threads` workers; the provided
///   implementation assumes per-image independence and ideal sharding,
///   which matches the engine's disjoint-range execution model.
pub trait LatencyModel: Send + Sync {
    /// Short model name for report tables (`"fpga-cycles"`, `"mac-proxy"`,
    /// `"measured-ewma"`).
    fn name(&self) -> &'static str;

    /// Expected service time of one image of this profile.
    fn predict(&self, profile: &CostProfile) -> Duration;

    /// Folds one measured execution (a batch of `images` inferences taking
    /// `measured` total) into the model. No-op by default.
    fn observe(&self, _profile: &CostProfile, _images: usize, _measured: Duration) {}

    /// Expected wall-clock of `batch` images of this profile sharded over
    /// `threads` engine workers (per-image independence, ideal sharding:
    /// the slowest worker runs `ceil(batch / threads)` images).
    fn predict_batch(&self, profile: &CostProfile, batch: usize, threads: usize) -> Duration {
        let per_worker = batch.div_ceil(threads.max(1)).max(1) as u32;
        self.predict(profile) * per_worker
    }
}

/// Blanket forward so `Box<dyn LatencyModel>` (and boxed concrete models)
/// are latency models themselves.
impl<L: LatencyModel + ?Sized> LatencyModel for Box<L> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predict(&self, profile: &CostProfile) -> Duration {
        (**self).predict(profile)
    }

    fn observe(&self, profile: &CostProfile, images: usize, measured: Duration) {
        (**self).observe(profile, images, measured)
    }

    fn predict_batch(&self, profile: &CostProfile, batch: usize, threads: usize) -> Duration {
        (**self).predict_batch(profile, batch, threads)
    }
}

/// The simplest useful latency model: a fixed per-image overhead plus time
/// proportional to the profile's MAC count.
///
/// The MAC proxy is substrate-agnostic — it ranks backends by arithmetic
/// volume, which is what the paper's pruning schedule optimizes — but it is
/// blind to per-token bookkeeping (selector scoring, repacking,
/// quantize/dequantize staging), so on a host CPU it over-rewards backends
/// that trade many MACs for much bookkeeping. Use [`MeasuredEwma`] on top
/// when absolute host accuracy matters.
#[derive(Debug, Clone)]
pub struct MacProxyModel {
    /// Seconds per MAC (default `1e-10`, i.e. 10 GMAC/s — a reasonable
    /// single-core figure for the packed microkernels).
    pub secs_per_mac: f64,
    /// Fixed per-image overhead added to every prediction.
    pub overhead: Duration,
}

impl Default for MacProxyModel {
    fn default() -> Self {
        Self {
            secs_per_mac: 1e-10,
            overhead: Duration::from_micros(20),
        }
    }
}

impl LatencyModel for MacProxyModel {
    fn name(&self) -> &'static str {
        "mac-proxy"
    }

    fn predict(&self, profile: &CostProfile) -> Duration {
        self.overhead + Duration::from_secs_f64(profile.macs as f64 * self.secs_per_mac)
    }
}

/// Per-variant online state of a [`MeasuredEwma`]: the overall per-image
/// EWMA (every observation regardless of batch size) plus one EWMA per
/// observed batch size, because per-image cost is *not* batch-independent —
/// batch formation, scratch checkout, and shard fan-out amortize over the
/// batch, so a size-1 execution costs measurably more per image than a
/// size-8 one.
#[derive(Debug)]
struct VariantEwma {
    /// Per-image seconds over all observations (what
    /// [`LatencyModel::predict`] reports).
    overall: f64,
    /// Per-image seconds keyed by observed batch size (what
    /// [`LatencyModel::predict_batch`] interpolates from, nearest key).
    buckets: BTreeMap<usize, f64>,
}

/// Online measured-latency model: starts from a prior [`LatencyModel`] and
/// converges to this machine's wall-clock, one exponentially weighted
/// moving average of per-image service time per backend variant — plus one
/// EWMA per `(variant, batch size)` bucket, so batch-shape cost (formation,
/// scratch checkout, shard fan-out) is captured instead of smeared into a
/// single rate.
///
/// Until a variant has been observed, [`predict`](LatencyModel::predict)
/// delegates to the prior; after the first observation the EWMA takes over
/// entirely (the prior's role is cold-start, not fusion). `observe` divides
/// the measured batch wall-clock by the batch size, so batch executions and
/// single-image executions feed the same overall estimate; each observation
/// also lands in its batch-size bucket, and
/// [`predict_batch`](LatencyModel::predict_batch) answers from the bucket
/// nearest the requested size.
pub struct MeasuredEwma {
    prior: Box<dyn LatencyModel>,
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest sample.
    alpha: f64,
    /// Per-variant EWMAs of per-image service seconds.
    state: Mutex<HashMap<String, VariantEwma>>,
}

impl std::fmt::Debug for MeasuredEwma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasuredEwma")
            .field("prior", &self.prior.name())
            .field("alpha", &self.alpha)
            .field("state", &self.state.lock().expect("ewma state poisoned"))
            .finish()
    }
}

impl MeasuredEwma {
    /// An EWMA model falling back to `prior` for unobserved variants.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(prior: impl LatencyModel + 'static, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self {
            prior: Box::new(prior),
            alpha,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// The observed per-image EWMA for a variant, if any execution of it
    /// has been fed back yet (the overall estimate, across batch sizes).
    pub fn observed(&self, variant: &str) -> Option<Duration> {
        self.state
            .lock()
            .expect("ewma state poisoned")
            .get(variant)
            .map(|v| Duration::from_secs_f64(v.overall))
    }

    /// The observed per-image EWMA of one exact `(variant, batch size)`
    /// bucket, if an execution of that size has been fed back yet.
    pub fn observed_batch(&self, variant: &str, batch: usize) -> Option<Duration> {
        self.state
            .lock()
            .expect("ewma state poisoned")
            .get(variant)
            .and_then(|v| v.buckets.get(&batch))
            .map(|&s| Duration::from_secs_f64(s))
    }

    /// Per-image seconds from the bucket whose key is nearest `batch`
    /// (ties prefer the larger bucket — closer to asymptotic cost).
    fn nearest_bucket(buckets: &BTreeMap<usize, f64>, batch: usize) -> Option<f64> {
        let below = buckets.range(..=batch).next_back();
        let above = buckets.range(batch..).next();
        match (below, above) {
            (Some((&lo, &lo_secs)), Some((&hi, &hi_secs))) => Some(if batch - lo < hi - batch {
                lo_secs
            } else {
                hi_secs
            }),
            (Some((_, &secs)), None) | (None, Some((_, &secs))) => Some(secs),
            (None, None) => None,
        }
    }
}

impl Default for MeasuredEwma {
    /// MAC-proxy prior, `alpha = 0.2` (a new sample moves the estimate a
    /// fifth of the way — smooth under scheduler jitter, converged within
    /// ~10 batches).
    fn default() -> Self {
        Self::new(MacProxyModel::default(), 0.2)
    }
}

impl LatencyModel for MeasuredEwma {
    fn name(&self) -> &'static str {
        "measured-ewma"
    }

    fn predict(&self, profile: &CostProfile) -> Duration {
        let state = self.state.lock().expect("ewma state poisoned");
        match state.get(&profile.variant) {
            Some(v) => Duration::from_secs_f64(v.overall),
            None => {
                drop(state);
                self.prior.predict(profile)
            }
        }
    }

    fn observe(&self, profile: &CostProfile, images: usize, measured: Duration) {
        if images == 0 {
            return;
        }
        let sample = measured.as_secs_f64() / images as f64;
        let mut state = self.state.lock().expect("ewma state poisoned");
        let variant = state
            .entry(profile.variant.clone())
            .or_insert_with(|| VariantEwma {
                overall: sample,
                buckets: BTreeMap::new(),
            });
        variant.overall += self.alpha * (sample - variant.overall);
        variant
            .buckets
            .entry(images)
            .and_modify(|s| *s += self.alpha * (sample - *s))
            .or_insert(sample);
    }

    /// Batch prediction from the nearest observed `(variant, batch size)`
    /// bucket: per-image bucket seconds × batch. The bucket observations
    /// were measured on the executing engine's real substrate (its thread
    /// sharding included), so the `threads` argument only matters for the
    /// prior fallback on unobserved variants.
    fn predict_batch(&self, profile: &CostProfile, batch: usize, threads: usize) -> Duration {
        let state = self.state.lock().expect("ewma state poisoned");
        match state
            .get(&profile.variant)
            .and_then(|v| Self::nearest_bucket(&v.buckets, batch))
        {
            Some(per_image) => Duration::from_secs_f64(per_image * batch.max(1) as f64),
            None => {
                drop(state);
                self.prior.predict_batch(profile, batch, threads)
            }
        }
    }
}

/// Ranks profiles fastest-first under `model` (ties broken by input
/// order). The offline harnesses compare this predicted order against the
/// measured wall-clock order.
pub fn rank_by_predicted(model: &dyn LatencyModel, profiles: &[CostProfile]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..profiles.len()).collect();
    order.sort_by(|&a, &b| {
        model
            .predict(&profiles[a])
            .cmp(&model.predict(&profiles[b]))
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(variant: &str, macs: u64) -> CostProfile {
        CostProfile {
            variant: variant.to_string(),
            config: ViTConfig::micro(4),
            tokens_per_block: vec![17; 6],
            exact: true,
            quantized: false,
            macs,
        }
    }

    #[test]
    fn mac_proxy_is_monotone_in_macs() {
        let model = MacProxyModel::default();
        let small = model.predict(&profile("a", 1_000_000));
        let large = model.predict(&profile("b", 10_000_000));
        assert!(large > small);
        assert!(small > Duration::ZERO);
    }

    #[test]
    fn predict_batch_shards_ideally() {
        let model = MacProxyModel::default();
        let p = profile("a", 1_000_000);
        let one = model.predict(&p);
        assert_eq!(model.predict_batch(&p, 8, 1), one * 8);
        assert_eq!(model.predict_batch(&p, 8, 4), one * 2);
        // Partial shards round up; degenerate thread counts clamp to 1.
        assert_eq!(model.predict_batch(&p, 9, 4), one * 3);
        assert_eq!(model.predict_batch(&p, 3, 0), one * 3);
    }

    #[test]
    fn ewma_prefers_prior_until_observed_then_converges() {
        let model = MeasuredEwma::new(MacProxyModel::default(), 0.5);
        let p = profile("dense", 1_000_000);
        let prior = model.predict(&p);
        assert_eq!(model.observed("dense"), None);

        // First observation replaces the prior outright.
        model.observe(&p, 4, Duration::from_millis(8)); // 2 ms/image
        assert_eq!(model.predict(&p), Duration::from_millis(2));
        assert!(model.predict(&p) != prior || prior == Duration::from_millis(2));

        // Subsequent observations move alpha of the way.
        model.observe(&p, 1, Duration::from_millis(4));
        assert_eq!(model.predict(&p), Duration::from_millis(3));

        // Other variants still fall back to the prior.
        assert_eq!(model.predict(&profile("other", 1_000_000)), prior);
    }

    #[test]
    fn ewma_buckets_per_batch_size_and_answers_from_the_nearest() {
        let model = MeasuredEwma::new(MacProxyModel::default(), 0.5);
        let p = profile("dense", 1_000_000);
        // Unobserved: batch predictions come from the prior's sharding
        // model.
        let prior = MacProxyModel::default();
        assert_eq!(model.predict_batch(&p, 8, 2), prior.predict_batch(&p, 8, 2));

        // A size-1 execution costs 4 ms/image, a size-8 one 1 ms/image —
        // the batch-formation overhead this model exists to capture.
        model.observe(&p, 1, Duration::from_millis(4));
        model.observe(&p, 8, Duration::from_millis(8));
        assert_eq!(
            model.observed_batch("dense", 1),
            Some(Duration::from_millis(4))
        );
        assert_eq!(
            model.observed_batch("dense", 8),
            Some(Duration::from_millis(1))
        );
        assert_eq!(model.observed_batch("dense", 4), None);

        // Exact buckets answer exactly; in-between sizes use the nearest
        // bucket's per-image rate (ties prefer the larger bucket).
        assert_eq!(model.predict_batch(&p, 1, 1), Duration::from_millis(4));
        assert_eq!(model.predict_batch(&p, 8, 1), Duration::from_millis(8));
        assert_eq!(model.predict_batch(&p, 2, 1), Duration::from_millis(8)); // bucket 1
        assert_eq!(model.predict_batch(&p, 6, 1), Duration::from_millis(6)); // bucket 8
        assert_eq!(model.predict_batch(&p, 32, 1), Duration::from_millis(32)); // bucket 8

        // Bucket updates are EWMAs too, independent per size.
        model.observe(&p, 8, Duration::from_millis(24)); // 3 ms/img sample
        assert_eq!(
            model.observed_batch("dense", 8),
            Some(Duration::from_millis(2))
        );
        assert_eq!(
            model.observed_batch("dense", 1),
            Some(Duration::from_millis(4))
        );
    }

    #[test]
    fn ewma_bucket_ties_prefer_the_larger_batch() {
        let model = MeasuredEwma::new(MacProxyModel::default(), 0.5);
        let p = profile("dense", 1_000_000);
        model.observe(&p, 2, Duration::from_millis(8)); // 4 ms/img
        model.observe(&p, 4, Duration::from_millis(4)); // 1 ms/img

        // Batch 3 is equidistant from buckets 2 and 4: the larger wins.
        assert_eq!(model.predict_batch(&p, 3, 1), Duration::from_millis(3));
    }

    #[test]
    fn ewma_ignores_empty_batches() {
        let model = MeasuredEwma::default();
        let p = profile("dense", 1_000_000);
        model.observe(&p, 0, Duration::from_secs(10));
        assert_eq!(model.observed("dense"), None);
    }

    #[test]
    fn rank_by_predicted_orders_fastest_first() {
        let model = MacProxyModel::default();
        let profiles = vec![
            profile("slow", 30_000_000),
            profile("fast", 1_000_000),
            profile("mid", 10_000_000),
        ];
        assert_eq!(rank_by_predicted(&model, &profiles), vec![1, 2, 0]);
    }

    #[test]
    fn keep_fraction_is_one_for_dense_profiles() {
        let cfg = ViTConfig::micro(4);
        let p = CostProfile::dense("dense", &cfg, 1);
        assert!((p.keep_fraction() - 1.0).abs() < 1e-12);
        let mut pruned = p.clone();
        pruned.tokens_per_block = vec![17, 17, 9, 9, 9, 9];
        assert!(pruned.keep_fraction() < 0.75);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        MeasuredEwma::new(MacProxyModel::default(), 0.0);
    }
}
