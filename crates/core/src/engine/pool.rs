//! The scratch checkout pool behind shared-reference inference.
//!
//! Before the serving redesign every [`crate::Engine`] inference method took
//! `&mut self` solely because the persistent [`PruneScratch`] workspaces
//! lived as a plain `Vec` field. A server cannot work that way: many client
//! threads hold `&Engine` and submit concurrently. [`ScratchPool`] breaks
//! the coupling — scratches are *checked out* for the duration of one batch
//! and *checked in* afterwards, so the engine's hot path needs only `&self`
//! while each in-flight batch still owns its workspaces exclusively (no
//! locking inside the compute loop; the mutex guards only the free list,
//! two lock acquisitions per batch).
//!
//! Warm scratches (grown activation/repack buffers) are what make the pool
//! worth having, so check-in retains them for reuse; the caller passes a
//! retention cap (normally the engine's worker count) to bound idle memory
//! when concurrent submitters briefly inflate the pool.

use heatvit_selector::PruneScratch;
use std::sync::Mutex;

/// A free list of reusable [`PruneScratch`] workspaces.
///
/// Checkout never blocks on capacity: when the free list runs dry (first
/// use, or more concurrent batches than retained scratches) fresh default
/// workspaces are built — [`PruneScratch`] is cheap to construct and grows
/// its buffers on first use, so correctness never depends on reuse, only
/// steady-state allocation behavior does.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    free: Mutex<Vec<PruneScratch>>,
}

impl ScratchPool {
    /// Checks out exactly `n` scratches: warm ones first, freshly built
    /// defaults for the remainder. Also reports how many had to be built
    /// fresh (the pool-miss count telemetry records — a steady-state
    /// nonzero rate means the retention cap is too small for the
    /// concurrency actually seen).
    pub(crate) fn checkout(&self, n: usize) -> (Vec<PruneScratch>, usize) {
        let mut out = {
            let mut free = self.free.lock().expect("scratch pool poisoned");
            let take = free.len().min(n);
            let start = free.len() - take;
            free.split_off(start)
        };
        let misses = n - out.len();
        out.resize_with(n, PruneScratch::default);
        (out, misses)
    }

    /// Returns scratches to the free list, retaining at most `max_idle`
    /// total and dropping the excess.
    pub(crate) fn checkin(&self, scratches: Vec<PruneScratch>, max_idle: usize) {
        let mut free = self.free.lock().expect("scratch pool poisoned");
        for scratch in scratches {
            if free.len() >= max_idle {
                break;
            }
            free.push(scratch);
        }
    }

    /// Number of idle scratches currently retained.
    #[cfg(test)]
    pub(crate) fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_builds_fresh_scratches_when_empty() {
        let pool = ScratchPool::default();
        let (scratches, misses) = pool.checkout(3);
        assert_eq!(scratches.len(), 3);
        assert_eq!(misses, 3);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn checkin_retains_up_to_the_cap() {
        let pool = ScratchPool::default();
        let (scratches, _) = pool.checkout(4);
        pool.checkin(scratches, 2);
        assert_eq!(pool.idle(), 2);
        // A later checkout reuses the retained pair and builds the rest.
        let (scratches, misses) = pool.checkout(3);
        assert_eq!(scratches.len(), 3);
        assert_eq!(misses, 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn checkout_drains_warm_scratches_before_building() {
        let pool = ScratchPool::default();
        pool.checkin(pool.checkout(1).0, 4);
        assert_eq!(pool.idle(), 1);
        // The warm scratch is reused (idle drops to 0), one fresh is built.
        let (scratches, misses) = pool.checkout(2);
        assert_eq!(misses, 1);
        pool.checkin(scratches, 4);
        assert_eq!(pool.idle(), 2);
    }
}
