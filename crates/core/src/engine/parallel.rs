//! Scoped-thread fan-out for the batched engine.
//!
//! A batch is sharded into disjoint index ranges — one per worker, computed
//! by [`heatvit_data::chunk_ranges`] as a pure function of `(batch len,
//! workers)` — and each worker runs its range on its own thread with its own
//! [`PruneScratch`], sharing the model immutably (`InferenceModel: Sync`).
//! Every image's logits, token counts, and MACs are written into output
//! slots preassigned by image index, so the merged [`crate::BatchOutput`] is
//! bitwise identical to the sequential path at every thread count: no
//! reduction order, no contended accumulator, no nondeterminism to tolerate.

use crate::model::InferenceModel;
use heatvit_data::chunk_ranges;
use heatvit_selector::PruneScratch;
use heatvit_tensor::Tensor;

/// Runs one shard of a batch sequentially, writing image `i`'s outputs into
/// slot `i` of each output slice. The sequential engine path is exactly this
/// function over the whole batch, which is what makes sharded and
/// single-thread execution bit-identical by construction.
pub(crate) fn run_shard<M: InferenceModel>(
    model: &M,
    scratch: &mut PruneScratch,
    images: &[&Tensor],
    classes: usize,
    logits: &mut [f32],
    tokens_per_block: &mut [Vec<usize>],
    macs: &mut [u64],
) {
    for (i, image) in images.iter().enumerate() {
        let out = model.infer_one(image, scratch);
        debug_assert_eq!(out.logits.dims(), &[1, classes]);
        logits[i * classes..(i + 1) * classes].copy_from_slice(out.logits.data());
        tokens_per_block[i] = out.tokens_per_block;
        macs[i] = out.macs;
    }
}

/// Fans `images` out over one scoped thread per scratch in `scratches`,
/// splitting batch and output buffers into the same disjoint ranges.
///
/// The caller guarantees `logits.len() == images.len() * classes` and
/// `tokens_per_block.len() == macs.len() == images.len()`; each worker
/// receives exclusive `&mut` sub-slices via `split_at_mut`, so the merge is
/// the writes themselves — no post-pass, no locks.
///
/// Only `workers - 1` threads are spawned per batch: the first (largest)
/// shard runs on the calling thread while the scope keeps the spawned
/// workers alive, so a `k`-worker batch pays `k - 1` thread creations.
/// Threads are still created per batch rather than pooled — acceptable
/// while shards are millisecond-scale, and the preassigned-slot merge
/// leaves room to swap in a persistent pool later without touching outputs.
pub(crate) fn infer_sharded<M: InferenceModel>(
    model: &M,
    scratches: &mut [PruneScratch],
    images: &[&Tensor],
    classes: usize,
    logits: &mut [f32],
    tokens_per_block: &mut [Vec<usize>],
    macs: &mut [u64],
) {
    // The engine only fans out for 2+ workers; single-shard batches take
    // the direct `run_shard` path in `infer_refs`.
    debug_assert!(scratches.len() > 1);
    let ranges = chunk_ranges(images.len(), scratches.len());
    std::thread::scope(|scope| {
        let mut logits_rest = logits;
        let mut tokens_rest = tokens_per_block;
        let mut macs_rest = macs;
        let mut caller_shard = None;
        for (range, scratch) in ranges.into_iter().zip(scratches.iter_mut()) {
            let (shard_logits, rest) =
                std::mem::take(&mut logits_rest).split_at_mut(range.len() * classes);
            logits_rest = rest;
            let (shard_tokens, rest) = std::mem::take(&mut tokens_rest).split_at_mut(range.len());
            tokens_rest = rest;
            let (shard_macs, rest) = std::mem::take(&mut macs_rest).split_at_mut(range.len());
            macs_rest = rest;
            let shard_images = &images[range];
            if caller_shard.is_none() {
                caller_shard = Some((
                    scratch,
                    shard_images,
                    shard_logits,
                    shard_tokens,
                    shard_macs,
                ));
                continue;
            }
            scope.spawn(move || {
                run_shard(
                    model,
                    scratch,
                    shard_images,
                    classes,
                    shard_logits,
                    shard_tokens,
                    shard_macs,
                )
            });
        }
        if let Some((scratch, shard_images, shard_logits, shard_tokens, shard_macs)) = caller_shard
        {
            run_shard(
                model,
                scratch,
                shard_images,
                classes,
                shard_logits,
                shard_tokens,
                shard_macs,
            );
        }
    });
}
