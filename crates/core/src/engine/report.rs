//! Result types of the batched engine: per-batch [`BatchOutput`] and the
//! whole-epoch [`EngineReport`].

use heatvit_tensor::Tensor;
use std::time::Duration;

/// Result of pushing one batch of images through an [`crate::Engine`].
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Stacked classification logits `[B, num_classes]`; row `i` is
    /// bit-identical to the per-image `infer` logits of image `i`,
    /// regardless of how many worker threads produced the batch.
    pub logits: Tensor,
    /// Per image: token count entering each encoder block.
    pub tokens_per_block: Vec<Vec<usize>>,
    /// Per image: multiply–accumulate estimate at actual token counts.
    pub macs: Vec<u64>,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl BatchOutput {
    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        self.macs.len()
    }

    /// `true` if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.macs.is_empty()
    }

    /// Predicted class per image.
    pub fn predictions(&self) -> Vec<usize> {
        self.logits.argmax_rows()
    }

    /// Images per second over the batch's wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.len() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Mean MAC count per image.
    pub fn mean_macs(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.macs.iter().sum::<u64>() as f64 / self.len() as f64
    }

    /// Mean token count entering each block, averaged over the batch —
    /// the "average kept tokens" curve of paper Fig. 4.
    ///
    /// Every image of a single model is expected to report the same depth
    /// (debug-asserted); should rows ever disagree — say, outputs of
    /// different models stitched into one `BatchOutput` — a short row only
    /// contributes to its leading blocks while the divisor stays the batch
    /// size, so no entry reads out of bounds.
    pub fn mean_tokens_per_block(&self) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        let depth = self
            .tokens_per_block
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0);
        debug_assert!(
            self.tokens_per_block.iter().all(|t| t.len() == depth),
            "ragged per-image depths: {:?}",
            self.tokens_per_block
                .iter()
                .map(Vec::len)
                .collect::<Vec<_>>()
        );
        let mut sums = vec![0.0f64; depth];
        for per_image in &self.tokens_per_block {
            for (s, &n) in sums.iter_mut().zip(per_image.iter()) {
                *s += n as f64;
            }
        }
        for s in &mut sums {
            *s /= self.len() as f64;
        }
        sums
    }
}

/// Aggregate statistics of a whole-dataset run ([`crate::Engine::run_epoch`]).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Images processed.
    pub images: usize,
    /// Batches processed.
    pub batches: usize,
    /// Classification accuracy against the dataset labels.
    pub accuracy: f32,
    /// Images per second across all batches (inference time only).
    pub images_per_sec: f64,
    /// Mean MAC count per image.
    pub mean_macs: f64,
    /// Mean token count entering the final block.
    pub mean_final_tokens: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(tokens_per_block: Vec<Vec<usize>>) -> BatchOutput {
        let batch = tokens_per_block.len();
        BatchOutput {
            logits: Tensor::zeros(&[batch.max(1), 2]),
            tokens_per_block,
            macs: vec![1; batch],
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn mean_tokens_averages_uniform_depths() {
        let out = output(vec![vec![4, 3, 2], vec![4, 1, 2]]);
        assert_eq!(out.mean_tokens_per_block(), vec![4.0, 2.0, 2.0]);
    }

    #[test]
    fn mean_tokens_of_empty_batch_is_empty() {
        assert!(output(Vec::new()).mean_tokens_per_block().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "ragged per-image depths")]
    fn mean_tokens_rejects_ragged_depths_in_debug() {
        output(vec![vec![4, 3, 2], vec![4, 1]]).mean_tokens_per_block();
    }
}
