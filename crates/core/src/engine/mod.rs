//! The batched inference [`Engine`]: sequential core, thread-sharded
//! execution ([`parallel`]), and result types ([`report`]).

mod parallel;
mod report;

pub use report::{BatchOutput, EngineReport};

use crate::model::{InferenceModel, ModelOutput};
use heatvit_data::{Batch, Loader};
use heatvit_nn::accuracy;
use heatvit_selector::PruneScratch;
use heatvit_tensor::Tensor;
use std::time::{Duration, Instant};

/// Execution configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads used to shard each batch. `1` (the default) runs the
    /// classic sequential path; higher values fan disjoint index ranges out
    /// over `std::thread::scope` workers, one [`PruneScratch`] per worker.
    /// Outputs are bitwise identical at every setting.
    pub threads: usize,
}

impl EngineConfig {
    /// A configuration running `threads` workers per batch.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "engine thread count must be positive");
        Self { threads }
    }

    /// A configuration sized to the machine: one worker per available
    /// hardware thread (falling back to 1 when parallelism cannot be
    /// queried).
    pub fn auto() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { threads: 1 }
    }
}

/// A batched inference engine: one model variant plus a pool of persistent
/// scratch workspaces, one per worker thread.
///
/// The engine amortizes dispatch over a batch — activation, repacking, and
/// keep-mask buffers are allocated once and reused for every image — and
/// reports throughput alongside the per-image cost model. With
/// [`EngineConfig::threads`] ` > 1` each batch is sharded into disjoint
/// index ranges executed by scoped worker threads that share the model
/// immutably and own one scratch each; every image writes its results into
/// the slot preassigned by its batch index, so batched outputs are bitwise
/// identical to the sequential per-image path at any thread count. Because
/// every variant implements [`InferenceModel`] through its own bit-exact
/// `infer` arithmetic, engine outputs are directly comparable across dense,
/// adaptive-pruned, static-pruned, and int8-quantized models.
///
/// # Examples
///
/// ```
/// use heatvit::{Engine, InferenceModel};
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
/// let images: Vec<Tensor> = (0..3)
///     .map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng))
///     .collect();
/// let mut engine = Engine::with_threads(model, 2);
/// let out = engine.infer_batch(&images);
/// assert_eq!(out.logits.dims(), &[3, 4]);
/// // Sharded logits match the per-image path bitwise.
/// let single = engine.model().infer(&images[1]);
/// assert_eq!(out.logits.row(1), single.row(0));
/// ```
#[derive(Debug)]
pub struct Engine<M: InferenceModel> {
    model: M,
    config: EngineConfig,
    /// One scratch per worker; `scratches[0]` also serves the sequential
    /// paths ([`Engine::infer_one`], single-thread batches).
    scratches: Vec<PruneScratch>,
}

impl<M: InferenceModel> Engine<M> {
    /// Wraps a model with a fresh single-threaded workspace.
    pub fn new(model: M) -> Self {
        Self::with_config(model, EngineConfig::default())
    }

    /// Wraps a model with a pool of `threads` worker scratches.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(model: M, threads: usize) -> Self {
        Self::with_config(model, EngineConfig::with_threads(threads))
    }

    /// Wraps a model under an explicit [`EngineConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `config.threads == 0` (reachable because the field is
    /// public; the constructors can't be bypassed into a zero-width pool).
    pub fn with_config(model: M, config: EngineConfig) -> Self {
        assert!(config.threads > 0, "engine thread count must be positive");
        Self {
            model,
            config,
            scratches: vec![PruneScratch::default(); config.threads],
        }
    }

    /// The active execution configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Resizes the worker pool in place, keeping already-warm scratches.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, threads: usize) {
        self.config = EngineConfig::with_threads(threads);
        self.scratches.resize_with(threads, PruneScratch::default);
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Classifies one image through the shared scratch workspace.
    pub fn infer_one(&mut self, image: &Tensor) -> ModelOutput {
        self.model.infer_one(image, &mut self.scratches[0])
    }

    /// Pushes a batch of images through the model, sharding it across the
    /// configured worker threads (sequentially when `threads == 1`). Each
    /// worker reuses its own scratch workspace across its whole shard.
    pub fn infer_batch(&mut self, images: &[Tensor]) -> BatchOutput {
        self.infer_batch_iter(images.iter())
    }

    /// [`Engine::infer_batch`] over any iterator of borrowed images (used
    /// directly by the loader integration, whose batches hold `&Sample`).
    ///
    /// The iterator is drained into a reference buffer up front so shards
    /// can index the batch (a handful of pointers — negligible next to one
    /// image's inference); the reported `elapsed` includes that drain.
    pub fn infer_batch_iter<'a>(
        &mut self,
        images: impl Iterator<Item = &'a Tensor>,
    ) -> BatchOutput {
        let start = Instant::now();
        let refs: Vec<&Tensor> = images.collect();
        self.infer_refs(&refs, start)
    }

    /// The shared batch core: preallocates one output slot per image, then
    /// runs the whole batch as one shard (sequential) or fans disjoint
    /// ranges out over scoped threads. Both paths execute
    /// [`parallel::run_shard`], so their outputs are bit-identical.
    fn infer_refs(&mut self, images: &[&Tensor], start: Instant) -> BatchOutput {
        let classes = self.model.config().num_classes;
        let batch = images.len();
        let mut logits_data = vec![0.0f32; batch * classes];
        let mut tokens_per_block: Vec<Vec<usize>> = vec![Vec::new(); batch];
        let mut macs = vec![0u64; batch];
        let workers = self.config.threads.min(batch).max(1);
        if workers == 1 {
            parallel::run_shard(
                &self.model,
                &mut self.scratches[0],
                images,
                classes,
                &mut logits_data,
                &mut tokens_per_block,
                &mut macs,
            );
        } else {
            parallel::infer_sharded(
                &self.model,
                &mut self.scratches[..workers],
                images,
                classes,
                &mut logits_data,
                &mut tokens_per_block,
                &mut macs,
            );
        }
        BatchOutput {
            logits: Tensor::from_vec(logits_data, &[batch, classes]),
            tokens_per_block,
            macs,
            elapsed: start.elapsed(),
        }
    }

    /// Classifies one loader batch (sharded like [`Engine::infer_batch`]).
    pub fn infer_samples(&mut self, batch: &Batch<'_>) -> BatchOutput {
        self.infer_batch_iter(batch.samples.iter().map(|s| &s.image))
    }

    /// Runs one full epoch of `loader` (no shuffling effect on results other
    /// than order), aggregating accuracy, throughput, and cost. Every batch
    /// is sharded across the configured worker threads, so a multi-threaded
    /// engine reports the same accuracy/cost numbers at higher
    /// `images_per_sec`.
    pub fn run_epoch(&mut self, loader: &Loader<'_>, epoch: u64) -> EngineReport {
        let mut images = 0usize;
        let mut batches = 0usize;
        let mut correct = 0.0f64;
        let mut inference_time = Duration::ZERO;
        let mut total_macs = 0u64;
        let mut final_tokens = 0u64;
        for batch in loader.iter_epoch(epoch) {
            let out = self.infer_samples(&batch);
            let labels = batch.labels();
            correct += accuracy(&out.logits, &labels) as f64 * labels.len() as f64;
            images += out.len();
            batches += 1;
            inference_time += out.elapsed;
            total_macs += out.macs.iter().sum::<u64>();
            final_tokens += out
                .tokens_per_block
                .iter()
                .map(|t| *t.last().unwrap_or(&0) as u64)
                .sum::<u64>();
        }
        EngineReport {
            images,
            batches,
            accuracy: if images == 0 {
                0.0
            } else {
                (correct / images as f64) as f32
            },
            images_per_sec: if images == 0 {
                0.0
            } else {
                images as f64 / inference_time.as_secs_f64().max(1e-12)
            },
            mean_macs: if images == 0 {
                0.0
            } else {
                total_macs as f64 / images as f64
            },
            mean_final_tokens: if images == 0 {
                0.0
            } else {
                final_tokens as f64 / images as f64
            },
        }
    }
}
