//! The batched inference [`Engine`]: builder-configured, shared-reference
//! hot path over a scratch checkout pool ([`pool`]), thread-sharded
//! execution ([`parallel`]), and result types ([`report`]).

mod parallel;
mod pool;
mod report;

pub use report::{BatchOutput, EngineReport};

use crate::model::{InferenceModel, ModelOutput};
use heatvit_data::{Batch, Loader};
use heatvit_nn::accuracy;
use heatvit_telemetry::{Counter, Registry};
use heatvit_tensor::Tensor;
use pool::ScratchPool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper clamp applied when [`ThreadCount::Auto`] resolves: even on very
/// wide machines the engine never auto-sizes past this many workers per
/// batch, because an engine worker is *cheap* — a scoped thread that lives
/// for one batch, owns one scratch, and runs pure compute over a disjoint
/// index range, so dozens of them amortize fine whenever the batch is wide
/// enough. Contrast `heatvit-serve`'s `MAX_AUTO_LANES` (8): a serving lane
/// is a long-lived batcher/executor OS thread with its own bounded queue,
/// condvars, and steal scanning, so auto-sizing caps lanes an order of
/// magnitude lower than batch workers. Micro-model shards stop amortizing
/// thread-spawn cost long before 64 anyway; an explicit
/// [`ThreadCount::Fixed`] can still go higher deliberately. The two caps
/// are pinned together in `crates/serve/tests/telemetry_parity.rs`.
pub const MAX_AUTO_THREADS: usize = 64;

/// Worker-count policy of an [`EngineConfig`].
///
/// `Auto` is *deferred*: the hardware is queried when an engine is built
/// ([`EngineBuilder::build`]), not when the configuration value is created,
/// so a config constructed on one machine (or serialized into a job spec)
/// resolves against the machine that actually runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadCount {
    /// Resolve to [`std::thread::available_parallelism`] at engine build
    /// time, clamped to `1..=`[`MAX_AUTO_THREADS`] (falling back to 1 when
    /// parallelism cannot be queried).
    Auto,
    /// Exactly this many workers. Must be positive.
    Fixed(usize),
}

impl ThreadCount {
    /// Resolves the policy to a concrete worker count on *this* machine.
    ///
    /// # Panics
    ///
    /// Panics on `Fixed(0)`.
    pub fn resolve(self) -> usize {
        match self {
            ThreadCount::Auto => {
                resolve_auto(std::thread::available_parallelism().ok().map(|n| n.get()))
            }
            ThreadCount::Fixed(n) => {
                assert!(n > 0, "engine thread count must be positive");
                n
            }
        }
    }
}

/// The pure clamp behind [`ThreadCount::Auto`]: `None` (parallelism not
/// queryable) falls back to a single worker; any reported width is clamped
/// to `1..=`[`MAX_AUTO_THREADS`].
fn resolve_auto(available: Option<usize>) -> usize {
    available.unwrap_or(1).clamp(1, MAX_AUTO_THREADS)
}

/// Execution configuration of an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Worker policy used to shard each batch. A resolved count of `1` runs
    /// the classic sequential path; higher values fan disjoint index ranges
    /// out over `std::thread::scope` workers, one scratch per worker.
    /// Outputs are bitwise identical at every setting.
    pub threads: ThreadCount,
}

impl EngineConfig {
    /// A configuration running exactly `threads` workers per batch.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "engine thread count must be positive");
        Self {
            threads: ThreadCount::Fixed(threads),
        }
    }

    /// A configuration sized to whatever machine eventually builds the
    /// engine: [`ThreadCount::Auto`], resolved against
    /// `std::thread::available_parallelism` at [`EngineBuilder::build`]
    /// time (clamped to `1..=`[`MAX_AUTO_THREADS`], 1-worker fallback when
    /// the query fails).
    pub fn auto() -> Self {
        Self {
            threads: ThreadCount::Auto,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: ThreadCount::Fixed(1),
        }
    }
}

/// Step-by-step construction of an [`Engine`], replacing the former
/// `new`/`with_threads`/`with_config` constructor sprawl.
///
/// # Examples
///
/// ```
/// use heatvit::{Engine, EngineConfig};
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
/// let engine = Engine::builder(model).threads(2).build();
/// assert_eq!(engine.threads(), 2);
/// ```
#[derive(Debug)]
pub struct EngineBuilder<M: InferenceModel> {
    model: M,
    config: EngineConfig,
    retention: Option<usize>,
    registry: Option<Arc<Registry>>,
}

impl<M: InferenceModel> EngineBuilder<M> {
    /// Starts a builder over `model` with the default single-worker config.
    pub fn new(model: M) -> Self {
        Self {
            model,
            config: EngineConfig::default(),
            retention: None,
            registry: None,
        }
    }

    /// Uses exactly `threads` workers per batch.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config = EngineConfig::with_threads(threads);
        self
    }

    /// Sizes the worker pool to the building machine (deferred
    /// [`ThreadCount::Auto`] resolution — see [`EngineConfig::auto`]).
    pub fn auto_threads(mut self) -> Self {
        self.config = EngineConfig::auto();
        self
    }

    /// Replaces the whole configuration.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Keeps up to `scratches` warm workspaces in the pool instead of the
    /// default (the resolved worker count). Useful when several callers
    /// share one engine concurrently — e.g. N serving lanes batching into
    /// the same backend — so each caller's checkout finds a warm scratch
    /// instead of allocating. Values below the worker count are raised to
    /// it at build time (retaining fewer than one scratch per worker would
    /// guarantee churn).
    ///
    /// # Panics
    ///
    /// Panics if `scratches == 0`.
    pub fn scratch_retention(mut self, scratches: usize) -> Self {
        assert!(scratches > 0, "scratch retention must be positive");
        self.retention = Some(scratches);
        self
    }

    /// Records this engine's telemetry — per-variant batch/image/timing
    /// counters and scratch-pool checkout/miss counts — into `registry`
    /// instead of a private one, so several engines (e.g. the service
    /// levels of one server) expose through a single snapshot. Metrics are
    /// labeled `variant=<model.variant()>`; two engines over the same
    /// variant in one registry share (aggregate into) the same counters.
    pub fn telemetry(mut self, registry: Arc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Builds the engine, resolving [`ThreadCount::Auto`] against this
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fixes a zero thread count.
    pub fn build(self) -> Engine<M> {
        let threads = self.config.threads.resolve();
        let registry = self.registry.unwrap_or_default();
        let metrics = EngineMetrics::new(registry, self.model.variant());
        Engine {
            model: self.model,
            config: self.config,
            threads,
            retention: self.retention,
            pool: ScratchPool::default(),
            metrics,
        }
    }
}

/// The engine's per-variant instrumentation: lock-free counter handles
/// into its [`Registry`]. Purely observational — recording never changes
/// inference arithmetic or scheduling.
#[derive(Debug)]
struct EngineMetrics {
    registry: Arc<Registry>,
    batches: Arc<Counter>,
    images: Arc<Counter>,
    inference_us: Arc<Counter>,
    scratch_checkouts: Arc<Counter>,
    scratch_misses: Arc<Counter>,
}

impl EngineMetrics {
    fn new(registry: Arc<Registry>, variant: &str) -> Self {
        let labels = &[("variant", variant)][..];
        let batches = registry.counter(
            "heatvit_engine_batches_total",
            labels,
            "Batches executed per backend variant.",
        );
        let images = registry.counter(
            "heatvit_engine_images_total",
            labels,
            "Images inferred per backend variant.",
        );
        let inference_us = registry.counter(
            "heatvit_engine_inference_us_total",
            labels,
            "Wall-clock microseconds spent inside batch inference per backend variant.",
        );
        let scratch_checkouts = registry.counter(
            "heatvit_engine_scratch_checkouts_total",
            labels,
            "Scratch workspaces checked out of the warm pool.",
        );
        let scratch_misses = registry.counter(
            "heatvit_engine_scratch_misses_total",
            labels,
            "Scratch checkouts that had to build a fresh workspace (pool ran dry).",
        );
        Self {
            registry,
            batches,
            images,
            inference_us,
            scratch_checkouts,
            scratch_misses,
        }
    }

    fn record_checkout(&self, scratches: usize, misses: usize) {
        self.scratch_checkouts.add(scratches as u64);
        self.scratch_misses.add(misses as u64);
    }

    fn record_batch(&self, images: usize, elapsed: Duration) {
        self.batches.inc();
        self.images.add(images as u64);
        self.inference_us.add(elapsed.as_micros() as u64);
    }
}

/// A batched inference engine: one model variant plus a checkout pool of
/// persistent scratch workspaces.
///
/// The engine amortizes dispatch over a batch — activation, repacking, and
/// keep-mask buffers are checked out of a warm pool and reused for every
/// image — and reports throughput alongside the per-image cost model. With
/// a resolved worker count `> 1` each batch is sharded into disjoint index
/// ranges executed by scoped worker threads that share the model immutably
/// and own one scratch each; every image writes its results into the slot
/// preassigned by its batch index, so batched outputs are bitwise identical
/// to the sequential per-image path at any thread count. Because every
/// variant implements [`InferenceModel`] through its own bit-exact `infer`
/// arithmetic, engine outputs are directly comparable across dense,
/// adaptive-pruned, static-pruned, and int8-quantized models.
///
/// Every inference entry point takes `&self`: scratch state lives in the
/// pool, not behind a mutable borrow, so one engine can serve concurrent
/// submitters (each in-flight batch checks out its own workspaces). This is
/// the substrate the `heatvit-serve` dynamic batcher fans requests into.
///
/// # Examples
///
/// ```
/// use heatvit::{Engine, InferenceModel};
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
/// let images: Vec<Tensor> = (0..3)
///     .map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng))
///     .collect();
/// let engine = Engine::builder(model).threads(2).build();
/// let out = engine.infer_batch(&images); // note: &engine, not &mut
/// assert_eq!(out.logits.dims(), &[3, 4]);
/// // Sharded logits match the per-image path bitwise.
/// let single = engine.model().infer(&images[1]);
/// assert_eq!(out.logits.row(1), single.row(0));
/// ```
#[derive(Debug)]
pub struct Engine<M: InferenceModel> {
    model: M,
    config: EngineConfig,
    /// `config.threads` resolved at build time.
    threads: usize,
    /// Explicit warm-pool cap ([`EngineBuilder::scratch_retention`]);
    /// `None` tracks the worker count.
    retention: Option<usize>,
    /// Warm scratch workspaces, checked out per batch
    /// ([`Engine::scratch_retention`] retained).
    pool: ScratchPool,
    /// Per-variant counters ([`EngineBuilder::telemetry`], or a private
    /// registry by default).
    metrics: EngineMetrics,
}

impl<M: InferenceModel> Engine<M> {
    /// Starts an [`EngineBuilder`] over `model`.
    pub fn builder(model: M) -> EngineBuilder<M> {
        EngineBuilder::new(model)
    }

    /// Wraps a model with a fresh single-threaded workspace.
    #[deprecated(note = "use `Engine::builder(model).build()`")]
    pub fn new(model: M) -> Self {
        EngineBuilder::new(model).build()
    }

    /// Wraps a model with a pool of `threads` worker scratches.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[deprecated(note = "use `Engine::builder(model).threads(n).build()`")]
    pub fn with_threads(model: M, threads: usize) -> Self {
        EngineBuilder::new(model).threads(threads).build()
    }

    /// Wraps a model under an explicit [`EngineConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration fixes a zero thread count.
    #[deprecated(note = "use `Engine::builder(model).config(config).build()`")]
    pub fn with_config(model: M, config: EngineConfig) -> Self {
        EngineBuilder::new(model).config(config).build()
    }

    /// The active execution configuration (as built).
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The resolved worker count ([`ThreadCount::Auto`] already applied).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many warm scratch workspaces the pool retains between batches:
    /// the explicit [`EngineBuilder::scratch_retention`] cap (never below
    /// the worker count), or the worker count itself by default.
    pub fn scratch_retention(&self) -> usize {
        self.retention.map_or(self.threads, |r| r.max(self.threads))
    }

    /// Reconfigures the worker count in place. Warm scratches beyond the
    /// new retention cap are released lazily at the next check-in.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn set_threads(&mut self, threads: usize) {
        self.config = EngineConfig::with_threads(threads);
        self.threads = threads;
    }

    /// The registry this engine's telemetry records into (the one passed
    /// to [`EngineBuilder::telemetry`], or the engine's own private
    /// registry). Snapshot it to read the per-variant batch/image/timing
    /// counters and scratch-pool checkout/miss counts.
    pub fn telemetry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Classifies one image through a checked-out scratch workspace.
    pub fn infer_one(&self, image: &Tensor) -> ModelOutput {
        let start = Instant::now();
        let (mut scratches, misses) = self.pool.checkout(1);
        self.metrics.record_checkout(1, misses);
        let out = self.model.infer_one(image, &mut scratches[0]);
        self.pool.checkin(scratches, self.scratch_retention());
        self.metrics.record_batch(1, start.elapsed());
        out
    }

    /// Pushes a batch of images through the model, sharding it across the
    /// configured worker threads (sequentially when the resolved count is
    /// 1). Each worker reuses its own scratch workspace across its whole
    /// shard.
    pub fn infer_batch(&self, images: &[Tensor]) -> BatchOutput {
        self.infer_batch_iter(images.iter())
    }

    /// [`Engine::infer_batch`] over any iterator of borrowed images (used
    /// directly by the loader integration, whose batches hold `&Sample`,
    /// and by the serving batcher, whose pending queue owns its tensors).
    ///
    /// The iterator is drained into a reference buffer up front so shards
    /// can index the batch (a handful of pointers — negligible next to one
    /// image's inference); the reported `elapsed` includes that drain.
    pub fn infer_batch_iter<'a>(&self, images: impl Iterator<Item = &'a Tensor>) -> BatchOutput {
        let start = Instant::now();
        let refs: Vec<&Tensor> = images.collect();
        self.infer_refs(&refs, start)
    }

    /// The shared batch core: preallocates one output slot per image, checks
    /// out one scratch per active worker, then runs the whole batch as one
    /// shard (sequential) or fans disjoint ranges out over scoped threads.
    /// Both paths execute [`parallel::run_shard`], so their outputs are
    /// bit-identical.
    fn infer_refs(&self, images: &[&Tensor], start: Instant) -> BatchOutput {
        let classes = self.model.config().num_classes;
        let batch = images.len();
        let mut logits_data = vec![0.0f32; batch * classes];
        let mut tokens_per_block: Vec<Vec<usize>> = vec![Vec::new(); batch];
        let mut macs = vec![0u64; batch];
        let workers = self.threads.min(batch).max(1);
        let (mut scratches, misses) = self.pool.checkout(workers);
        self.metrics.record_checkout(workers, misses);
        if workers == 1 {
            parallel::run_shard(
                &self.model,
                &mut scratches[0],
                images,
                classes,
                &mut logits_data,
                &mut tokens_per_block,
                &mut macs,
            );
        } else {
            parallel::infer_sharded(
                &self.model,
                &mut scratches,
                images,
                classes,
                &mut logits_data,
                &mut tokens_per_block,
                &mut macs,
            );
        }
        self.pool.checkin(scratches, self.scratch_retention());
        let elapsed = start.elapsed();
        self.metrics.record_batch(batch, elapsed);
        BatchOutput {
            logits: Tensor::from_vec(logits_data, &[batch, classes]),
            tokens_per_block,
            macs,
            elapsed,
        }
    }

    /// Classifies one loader batch (sharded like [`Engine::infer_batch`]).
    pub fn infer_samples(&self, batch: &Batch<'_>) -> BatchOutput {
        self.infer_batch_iter(batch.samples.iter().map(|s| &s.image))
    }

    /// Runs one full epoch of `loader` (no shuffling effect on results other
    /// than order), aggregating accuracy, throughput, and cost. Every batch
    /// is sharded across the configured worker threads, so a multi-threaded
    /// engine reports the same accuracy/cost numbers at higher
    /// `images_per_sec`.
    pub fn run_epoch(&self, loader: &Loader<'_>, epoch: u64) -> EngineReport {
        let mut images = 0usize;
        let mut batches = 0usize;
        let mut correct = 0.0f64;
        let mut inference_time = Duration::ZERO;
        let mut total_macs = 0u64;
        let mut final_tokens = 0u64;
        for batch in loader.iter_epoch(epoch) {
            let out = self.infer_samples(&batch);
            let labels = batch.labels();
            correct += accuracy(&out.logits, &labels) as f64 * labels.len() as f64;
            images += out.len();
            batches += 1;
            inference_time += out.elapsed;
            total_macs += out.macs.iter().sum::<u64>();
            final_tokens += out
                .tokens_per_block
                .iter()
                .map(|t| *t.last().unwrap_or(&0) as u64)
                .sum::<u64>();
        }
        EngineReport {
            images,
            batches,
            accuracy: if images == 0 {
                0.0
            } else {
                (correct / images as f64) as f32
            },
            images_per_sec: if images == 0 {
                0.0
            } else {
                images as f64 / inference_time.as_secs_f64().max(1e-12)
            },
            mean_macs: if images == 0 {
                0.0
            } else {
                total_macs as f64 / images as f64
            },
            mean_final_tokens: if images == 0 {
                0.0
            } else {
                final_tokens as f64 / images as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_config_defers_resolution() {
        // `auto()` must not bake a number in at construction time.
        assert_eq!(EngineConfig::auto().threads, ThreadCount::Auto);
    }

    #[test]
    fn resolve_auto_falls_back_to_one_core() {
        // The 1-core fallback: unqueryable parallelism and a single-core
        // report both resolve to one worker.
        assert_eq!(resolve_auto(None), 1);
        assert_eq!(resolve_auto(Some(1)), 1);
    }

    #[test]
    fn resolve_auto_clamps_wide_machines() {
        assert_eq!(resolve_auto(Some(4)), 4);
        assert_eq!(resolve_auto(Some(MAX_AUTO_THREADS)), MAX_AUTO_THREADS);
        assert_eq!(resolve_auto(Some(100_000)), MAX_AUTO_THREADS);
        // Degenerate zero report clamps up, never down to a zero-width pool.
        assert_eq!(resolve_auto(Some(0)), 1);
    }

    #[test]
    fn fixed_thread_count_resolves_to_itself() {
        assert_eq!(ThreadCount::Fixed(3).resolve(), 3);
        assert_eq!(EngineConfig::with_threads(5).threads, ThreadCount::Fixed(5));
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_fixed_threads_panics_at_resolution() {
        ThreadCount::Fixed(0).resolve();
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_thread_config_panics_at_construction() {
        EngineConfig::with_threads(0);
    }

    #[test]
    fn scratch_retention_defaults_to_threads_and_never_drops_below() {
        use heatvit_vit::{ViTConfig, VisionTransformer};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
        let engine = Engine::builder(model).threads(3).build();
        assert_eq!(engine.scratch_retention(), 3);

        let mut rng = StdRng::seed_from_u64(0);
        let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
        // An explicit cap above the worker count is honored (the lane-shared
        // engine case: retention = workers × lanes)...
        let engine = Engine::builder(model)
            .threads(2)
            .scratch_retention(8)
            .build();
        assert_eq!(engine.scratch_retention(), 8);

        let mut rng = StdRng::seed_from_u64(0);
        let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
        // ...and a cap below it is raised to one scratch per worker.
        let engine = Engine::builder(model)
            .threads(4)
            .scratch_retention(1)
            .build();
        assert_eq!(engine.scratch_retention(), 4);
    }

    #[test]
    fn engine_telemetry_counts_batches_and_scratch_misses() {
        use heatvit_vit::{ViTConfig, VisionTransformer};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
        let registry = Registry::new();
        let engine = Engine::builder(model)
            .threads(2)
            .telemetry(Arc::clone(&registry))
            .build();
        let images: Vec<Tensor> = (0..3)
            .map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng))
            .collect();
        engine.infer_batch(&images);
        engine.infer_batch(&images);
        let labels = &[("variant", "dense")][..];
        let snap = registry.snapshot();
        assert_eq!(snap.counter("heatvit_engine_batches_total", labels), 2);
        assert_eq!(snap.counter("heatvit_engine_images_total", labels), 6);
        // 2 workers per batch; the first batch builds both scratches
        // fresh, the second reuses the retained pair.
        assert_eq!(
            snap.counter("heatvit_engine_scratch_checkouts_total", labels),
            4
        );
        assert_eq!(
            snap.counter("heatvit_engine_scratch_misses_total", labels),
            2
        );
        assert!(snap.counter("heatvit_engine_inference_us_total", labels) > 0);
        // The engine's accessor exposes the same registry.
        assert!(Arc::ptr_eq(engine.telemetry(), &registry));
    }

    #[test]
    #[should_panic(expected = "scratch retention must be positive")]
    fn zero_scratch_retention_panics() {
        use heatvit_vit::{ViTConfig, VisionTransformer};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
        let _ = Engine::builder(model).scratch_retention(0);
    }
}
