//! The [`InferenceModel`] trait: one interface over the dense, adaptively
//! pruned, statically pruned, training-free pruned, and int8-quantized ViT
//! variants.

use crate::latency::CostProfile;
use heatvit_quant::QuantizedViT;
use heatvit_selector::{PruneScratch, PrunedViT, StaticPrunedViT};
use heatvit_tensor::Tensor;
use heatvit_tfprune::{ClsAttnPrunedViT, TokenMergeViT, TopKPrunedViT};
use heatvit_vit::{ViTConfig, VisionTransformer};

/// Result of one image's inference through any model variant.
#[derive(Debug, Clone)]
pub struct ModelOutput {
    /// Classification logits `[1, num_classes]`.
    pub logits: Tensor,
    /// Token count entering each encoder block (class/package included).
    pub tokens_per_block: Vec<usize>,
    /// Multiply–accumulate estimate for this inference at its actual
    /// per-block token counts.
    pub macs: u64,
}

/// A model that can classify one image and account for its own cost.
///
/// Implemented by [`VisionTransformer`] (dense baseline), [`PrunedViT`]
/// (adaptive HeatViT pruning), [`StaticPrunedViT`] (input-agnostic pruning
/// baselines), the training-free family ([`ClsAttnPrunedViT`],
/// [`TokenMergeViT`], [`TopKPrunedViT`] — no learned selector), and
/// [`QuantizedViT`] (the int8 integer pipeline, dense or adaptively
/// pruned), so the [`crate::Engine`] can benchmark all of them under a
/// single harness — the comparison setup of paper Figs. 2 and 4 extended
/// with the Section V quantized backend and the training-free baselines.
///
/// `Send + Sync` are supertraits: [`infer_one`](InferenceModel::infer_one)
/// takes `&self`, the sharded engine shares that reference across scoped
/// worker threads (all mutable state lives in the per-worker
/// [`PruneScratch`]), and a serving worker pool (`heatvit-serve`) *owns*
/// the model on a spawned batcher thread, which requires `Send`. Every
/// workspace model is plain owned data, so the bounds cost implementors
/// nothing — each model crate carries a compile-time assertion.
///
/// The trait is object safe: heterogeneous model fleets can be held as
/// `Box<dyn InferenceModel>`, which implements the trait itself and can be
/// driven by an [`crate::Engine`] directly. For the workspace's own
/// variants, prefer the allocation-free [`crate::Backend`] enum.
pub trait InferenceModel: Send + Sync {
    /// Short human-readable variant name for report tables.
    fn variant(&self) -> &str;

    /// The backbone architecture configuration.
    fn config(&self) -> &ViTConfig;

    /// Classifies one image, reusing `scratch` for every intermediate
    /// buffer. Must be bit-identical to the variant's single-image `infer`
    /// path.
    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput;

    /// Multiply–accumulate count with the full token count in every block —
    /// the dense-cost baseline pruning is measured against.
    fn dense_macs(&self) -> u64;

    /// What one inference through this model is *expected* to compute,
    /// without running inference: the [`CostProfile`] a
    /// [`crate::LatencyModel`] turns into a predicted service time.
    ///
    /// The default is the dense profile (full tokens everywhere, float
    /// arithmetic) — correct for the dense baseline and a conservative
    /// over-estimate for anything else. Pruned and quantized variants
    /// override it with their planned/nominal token schedules and
    /// arithmetic family.
    fn cost_profile(&self) -> CostProfile {
        CostProfile::dense(self.variant(), self.config(), self.dense_macs())
    }
}

/// Borrowed models are models too (`M: Sync` comes with the supertraits),
/// so an [`crate::Engine`] can drive a model it does not own — e.g. a
/// training loop evaluating throughput on the model it is still updating
/// between epochs.
impl<M: InferenceModel + ?Sized> InferenceModel for &M {
    fn variant(&self) -> &str {
        (**self).variant()
    }

    fn config(&self) -> &ViTConfig {
        (**self).config()
    }

    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        (**self).infer_one(image, scratch)
    }

    fn dense_macs(&self) -> u64 {
        (**self).dense_macs()
    }

    fn cost_profile(&self) -> CostProfile {
        (**self).cost_profile()
    }
}

/// Boxed (and boxed-trait-object) models are models too, so an
/// `Engine<Box<dyn InferenceModel>>` can drive a fleet whose concrete
/// variant is chosen at runtime.
impl<M: InferenceModel + ?Sized> InferenceModel for Box<M> {
    fn variant(&self) -> &str {
        (**self).variant()
    }

    fn config(&self) -> &ViTConfig {
        (**self).config()
    }

    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        (**self).infer_one(image, scratch)
    }

    fn dense_macs(&self) -> u64 {
        (**self).dense_macs()
    }

    fn cost_profile(&self) -> CostProfile {
        (**self).cost_profile()
    }
}

impl InferenceModel for VisionTransformer {
    fn variant(&self) -> &str {
        Self::VARIANT
    }

    fn config(&self) -> &ViTConfig {
        self.config()
    }

    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let logits = self.infer_with(image, &mut scratch.vit);
        ModelOutput {
            logits,
            tokens_per_block: vec![self.config().num_tokens(); self.config().depth],
            macs: self.macs(),
        }
    }

    fn dense_macs(&self) -> u64 {
        self.macs()
    }
}

impl InferenceModel for PrunedViT {
    fn variant(&self) -> &str {
        Self::VARIANT
    }

    fn config(&self) -> &ViTConfig {
        self.backbone().config()
    }

    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let inference = self.infer_with(image, scratch);
        let macs = self.macs(&inference);
        ModelOutput {
            logits: inference.logits,
            tokens_per_block: inference.tokens_per_block,
            macs,
        }
    }

    fn dense_macs(&self) -> u64 {
        self.backbone().macs()
    }

    /// Nominal-keep expectation: per-image counts vary with input content
    /// (`exact == false` whenever a selector is installed), but the
    /// declared keep schedule is what the selectors were trained toward.
    fn cost_profile(&self) -> CostProfile {
        let tokens = self.expected_tokens_per_block();
        let macs = self.macs_for_tokens(&tokens);
        CostProfile {
            variant: self.variant().to_string(),
            config: InferenceModel::config(self).clone(),
            exact: self.selector_blocks().is_empty(),
            quantized: false,
            macs,
            tokens_per_block: tokens,
        }
    }
}

impl InferenceModel for QuantizedViT {
    /// `"int8-dense"` or `"int8-adaptive"` depending on pruning stages.
    fn variant(&self) -> &str {
        self.variant_name()
    }

    fn config(&self) -> &ViTConfig {
        self.config()
    }

    /// Runs the integer pipeline through the engine's shared scratch: the
    /// quantized model uses the `quant` compartment of [`PruneScratch`]
    /// (int8 staging + float activation buffers), leaving the float
    /// compartments untouched. Reported `macs` are packed-DSP-equivalent
    /// (raw int8 MACs ÷ `heatvit_quant::DSP_PACKING_FACTOR`).
    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let inference = self.infer_with(image, &mut scratch.quant);
        ModelOutput {
            logits: inference.logits,
            tokens_per_block: inference.tokens_per_block,
            macs: inference.macs,
        }
    }

    /// The *float-equivalent* dense baseline (unpacked raw MACs), so the
    /// engine's MAC-speedup column exposes both the DSP-packing gain and any
    /// token-pruning gain.
    fn dense_macs(&self) -> u64 {
        self.dense_macs()
    }

    /// Quantized profile (`quantized == true`, packed-DSP-equivalent MACs);
    /// exact for the dense int8 variant, a nominal-keep expectation when
    /// attention-threshold pruning stages are installed.
    fn cost_profile(&self) -> CostProfile {
        let tokens = self.expected_tokens_per_block();
        let macs = self.packed_macs_for(&tokens);
        CostProfile {
            variant: self.variant().to_string(),
            config: self.config().clone(),
            exact: self.prune_stages().is_empty(),
            quantized: true,
            macs,
            tokens_per_block: tokens,
        }
    }
}

impl InferenceModel for StaticPrunedViT {
    fn variant(&self) -> &str {
        Self::VARIANT
    }

    fn config(&self) -> &ViTConfig {
        self.backbone().config()
    }

    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let inference = self.infer_with(image, scratch);
        let macs = self.macs(&inference);
        ModelOutput {
            logits: inference.logits,
            tokens_per_block: inference.tokens_per_block,
            macs,
        }
    }

    fn dense_macs(&self) -> u64 {
        self.backbone().macs()
    }

    /// Exact profile: static pruning is input-agnostic, so the planned
    /// schedule is the schedule every image executes.
    fn cost_profile(&self) -> CostProfile {
        let tokens = self.planned_tokens_per_block();
        let macs = self.macs_for_tokens(&tokens);
        CostProfile {
            variant: self.variant().to_string(),
            config: InferenceModel::config(self).clone(),
            exact: true,
            quantized: false,
            macs,
            tokens_per_block: tokens,
        }
    }
}

impl InferenceModel for ClsAttnPrunedViT {
    fn variant(&self) -> &str {
        Self::VARIANT
    }

    fn config(&self) -> &ViTConfig {
        self.backbone().config()
    }

    /// Runs through the `tf` compartment of [`PruneScratch`] (scoring
    /// projections, repack buffers, and its own backbone scratch), leaving
    /// the learned-selector compartments untouched.
    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let inference = self.infer_with(image, &mut scratch.tf);
        let macs = self.macs(&inference);
        ModelOutput {
            logits: inference.logits,
            tokens_per_block: inference.tokens_per_block,
            macs,
        }
    }

    fn dense_macs(&self) -> u64 {
        self.backbone().macs()
    }

    /// Exact profile: *which* tokens survive varies per image, *how many*
    /// never does, and the scoring overhead is charged into `macs`.
    fn cost_profile(&self) -> CostProfile {
        let tokens = self.planned_tokens_per_block();
        let macs = self.macs_for_tokens(&tokens);
        CostProfile {
            variant: self.variant().to_string(),
            config: InferenceModel::config(self).clone(),
            exact: true,
            quantized: false,
            macs,
            tokens_per_block: tokens,
        }
    }
}

impl InferenceModel for TokenMergeViT {
    fn variant(&self) -> &str {
        Self::VARIANT
    }

    fn config(&self) -> &ViTConfig {
        self.backbone().config()
    }

    /// Runs through the `tf` compartment of [`PruneScratch`], like the
    /// hard-drop variant it shares its schedule with.
    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let inference = self.infer_with(image, &mut scratch.tf);
        let macs = self.macs(&inference);
        ModelOutput {
            logits: inference.logits,
            tokens_per_block: inference.tokens_per_block,
            macs,
        }
    }

    fn dense_macs(&self) -> u64 {
        self.backbone().macs()
    }

    /// Exact profile at the hard drop's token schedule, plus the charged
    /// merge (cosine-similarity) overhead.
    fn cost_profile(&self) -> CostProfile {
        let tokens = self.planned_tokens_per_block();
        let macs = self.macs_for_tokens(&tokens);
        CostProfile {
            variant: self.variant().to_string(),
            config: InferenceModel::config(self).clone(),
            exact: true,
            quantized: false,
            macs,
            tokens_per_block: tokens,
        }
    }
}

impl InferenceModel for TopKPrunedViT {
    fn variant(&self) -> &str {
        Self::VARIANT
    }

    fn config(&self) -> &ViTConfig {
        self.backbone().config()
    }

    /// Runs through the `tf` compartment of [`PruneScratch`].
    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        let inference = self.infer_with(image, &mut scratch.tf);
        let macs = self.macs(&inference);
        ModelOutput {
            logits: inference.logits,
            tokens_per_block: inference.tokens_per_block,
            macs,
        }
    }

    fn dense_macs(&self) -> u64 {
        self.backbone().macs()
    }

    /// Exact profile: the keep counts are literal, so the planned schedule
    /// is the executed schedule.
    fn cost_profile(&self) -> CostProfile {
        let tokens = self.planned_tokens_per_block();
        let macs = self.macs_for_tokens(&tokens);
        CostProfile {
            variant: self.variant().to_string(),
            config: InferenceModel::config(self).clone(),
            exact: true,
            quantized: false,
            macs,
            tokens_per_block: tokens,
        }
    }
}
