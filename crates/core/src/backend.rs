//! Type-erased model handles: [`Backend`] and the [`BackendKind`] selector.
//!
//! `Engine<M>` is generic so specialized deployments monomorphize away the
//! dispatch, but a serving front-end (and any table-driven harness like
//! `run_all`) wants *one* engine type whose concrete model is chosen at
//! runtime. [`Backend`] is that handle: an enum over the workspace's seven
//! model types, dispatching [`InferenceModel`] by `match` — no heap
//! allocation, no vtable, and `Engine<Backend>` is a single nameable type.
//! [`BackendKind`] is the matching value-level selector: a closed set of
//! well-known configurations that benchmarks and servers can iterate
//! ([`BackendKind::ALL`]) instead of hand-writing one block per variant.

use crate::model::{InferenceModel, ModelOutput};
use heatvit_quant::QuantizedViT;
use heatvit_selector::{PruneScratch, PrunedViT, StaticPrunedViT};
use heatvit_tensor::Tensor;
use heatvit_tfprune::{ClsAttnPrunedViT, TokenMergeViT, TopKPrunedViT};
use heatvit_vit::{ViTConfig, VisionTransformer};

/// A type-erased inference backend: one of the seven workspace model types
/// behind a single concrete type.
///
/// Every variant's [`InferenceModel`] implementation is forwarded
/// unchanged, so a `Backend` is bit-identical to the concrete model it
/// wraps — parity tests can compare the two directly.
///
/// # Examples
///
/// ```
/// use heatvit::{Backend, BackendKind, Engine, InferenceModel};
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(2), &mut rng);
/// let backend = Backend::from(model);
/// assert_eq!(backend.kind(), BackendKind::Dense);
/// let engine = Engine::builder(backend).build(); // Engine<Backend>: one type
/// assert_eq!(engine.model().variant(), BackendKind::Dense.label());
/// ```
#[derive(Debug, Clone)]
pub enum Backend {
    /// The dense float baseline.
    Dense(VisionTransformer),
    /// Adaptive HeatViT token pruning (float).
    AdaptivePruned(PrunedViT),
    /// Input-agnostic static pruning baseline (float).
    StaticPruned(StaticPrunedViT),
    /// Training-free CLS-attention hard-drop pruning (float, no learned
    /// selector).
    ClsAttnPruned(ClsAttnPrunedViT),
    /// Training-free token mergence: hard-drop schedule, pruned tokens
    /// folded into their nearest kept token (float).
    TokenMerge(TokenMergeViT),
    /// Training-free fixed-layer top-k pruning (float, static keep counts).
    TopKPruned(TopKPrunedViT),
    /// The int8 integer pipeline, dense or adaptively pruned depending on
    /// its installed stages.
    Quantized(QuantizedViT),
}

impl Backend {
    /// The value-level kind of this backend (for the quantized variant,
    /// distinguished by whether pruning stages are installed).
    pub fn kind(&self) -> BackendKind {
        match self {
            Backend::Dense(_) => BackendKind::Dense,
            Backend::AdaptivePruned(_) => BackendKind::AdaptivePruned,
            Backend::StaticPruned(_) => BackendKind::StaticPruned,
            Backend::ClsAttnPruned(_) => BackendKind::ClsAttn,
            Backend::TokenMerge(_) => BackendKind::TokenMerge,
            Backend::TopKPruned(_) => BackendKind::TopK,
            Backend::Quantized(q) => {
                if q.prune_stages().is_empty() {
                    BackendKind::Int8Dense
                } else {
                    BackendKind::Int8Adaptive
                }
            }
        }
    }
}

impl From<VisionTransformer> for Backend {
    fn from(model: VisionTransformer) -> Self {
        Backend::Dense(model)
    }
}

impl From<PrunedViT> for Backend {
    fn from(model: PrunedViT) -> Self {
        Backend::AdaptivePruned(model)
    }
}

impl From<StaticPrunedViT> for Backend {
    fn from(model: StaticPrunedViT) -> Self {
        Backend::StaticPruned(model)
    }
}

impl From<ClsAttnPrunedViT> for Backend {
    fn from(model: ClsAttnPrunedViT) -> Self {
        Backend::ClsAttnPruned(model)
    }
}

impl From<TokenMergeViT> for Backend {
    fn from(model: TokenMergeViT) -> Self {
        Backend::TokenMerge(model)
    }
}

impl From<TopKPrunedViT> for Backend {
    fn from(model: TopKPrunedViT) -> Self {
        Backend::TopKPruned(model)
    }
}

impl From<QuantizedViT> for Backend {
    fn from(model: QuantizedViT) -> Self {
        Backend::Quantized(model)
    }
}

impl InferenceModel for Backend {
    fn variant(&self) -> &str {
        match self {
            Backend::Dense(m) => m.variant(),
            Backend::AdaptivePruned(m) => m.variant(),
            Backend::StaticPruned(m) => m.variant(),
            Backend::ClsAttnPruned(m) => m.variant(),
            Backend::TokenMerge(m) => m.variant(),
            Backend::TopKPruned(m) => m.variant(),
            Backend::Quantized(m) => m.variant(),
        }
    }

    fn config(&self) -> &ViTConfig {
        match self {
            Backend::Dense(m) => InferenceModel::config(m),
            Backend::AdaptivePruned(m) => InferenceModel::config(m),
            Backend::StaticPruned(m) => InferenceModel::config(m),
            Backend::ClsAttnPruned(m) => InferenceModel::config(m),
            Backend::TokenMerge(m) => InferenceModel::config(m),
            Backend::TopKPruned(m) => InferenceModel::config(m),
            Backend::Quantized(m) => InferenceModel::config(m),
        }
    }

    fn infer_one(&self, image: &Tensor, scratch: &mut PruneScratch) -> ModelOutput {
        match self {
            Backend::Dense(m) => m.infer_one(image, scratch),
            Backend::AdaptivePruned(m) => m.infer_one(image, scratch),
            Backend::StaticPruned(m) => m.infer_one(image, scratch),
            Backend::ClsAttnPruned(m) => m.infer_one(image, scratch),
            Backend::TokenMerge(m) => m.infer_one(image, scratch),
            Backend::TopKPruned(m) => m.infer_one(image, scratch),
            Backend::Quantized(m) => m.infer_one(image, scratch),
        }
    }

    fn dense_macs(&self) -> u64 {
        match self {
            Backend::Dense(m) => InferenceModel::dense_macs(m),
            Backend::AdaptivePruned(m) => InferenceModel::dense_macs(m),
            Backend::StaticPruned(m) => InferenceModel::dense_macs(m),
            Backend::ClsAttnPruned(m) => InferenceModel::dense_macs(m),
            Backend::TokenMerge(m) => InferenceModel::dense_macs(m),
            Backend::TopKPruned(m) => InferenceModel::dense_macs(m),
            Backend::Quantized(m) => InferenceModel::dense_macs(m),
        }
    }

    fn cost_profile(&self) -> crate::latency::CostProfile {
        match self {
            Backend::Dense(m) => m.cost_profile(),
            Backend::AdaptivePruned(m) => m.cost_profile(),
            Backend::StaticPruned(m) => m.cost_profile(),
            Backend::ClsAttnPruned(m) => m.cost_profile(),
            Backend::TokenMerge(m) => m.cost_profile(),
            Backend::TopKPruned(m) => m.cost_profile(),
            Backend::Quantized(m) => m.cost_profile(),
        }
    }
}

/// The closed set of well-known backend configurations.
///
/// The quantized model contributes two kinds — dense and adaptively pruned
/// — because they are distinct rows in every comparison the paper makes;
/// they share the [`Backend::Quantized`] representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Dense float baseline ([`VisionTransformer`]).
    Dense,
    /// Adaptive HeatViT pruning ([`PrunedViT`]).
    AdaptivePruned,
    /// Static pruning baseline ([`StaticPrunedViT`]).
    StaticPruned,
    /// Training-free CLS-attention hard drop ([`ClsAttnPrunedViT`]).
    ClsAttn,
    /// Training-free token mergence ([`TokenMergeViT`]).
    TokenMerge,
    /// Training-free fixed-layer top-k ([`TopKPrunedViT`]).
    TopK,
    /// Int8 pipeline without pruning stages ([`QuantizedViT`]).
    Int8Dense,
    /// Int8 pipeline with attention-driven pruning stages.
    Int8Adaptive,
}

impl BackendKind {
    /// Every kind, in canonical report-table order (dense baseline first —
    /// harnesses use it as the accuracy/agreement reference row — then the
    /// learned schedules, the training-free family, and the int8 pipeline).
    pub const ALL: [BackendKind; 8] = [
        BackendKind::Dense,
        BackendKind::AdaptivePruned,
        BackendKind::StaticPruned,
        BackendKind::ClsAttn,
        BackendKind::TokenMerge,
        BackendKind::TopK,
        BackendKind::Int8Dense,
        BackendKind::Int8Adaptive,
    ];

    /// The canonical variant label, delegated to the constant each model
    /// crate registers (`VisionTransformer::VARIANT` etc.), so a
    /// [`Backend`] built for this kind reports exactly this string from
    /// [`InferenceModel::variant`].
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Dense => VisionTransformer::VARIANT,
            BackendKind::AdaptivePruned => PrunedViT::VARIANT,
            BackendKind::StaticPruned => StaticPrunedViT::VARIANT,
            BackendKind::ClsAttn => ClsAttnPrunedViT::VARIANT,
            BackendKind::TokenMerge => TokenMergeViT::VARIANT,
            BackendKind::TopK => TopKPrunedViT::VARIANT,
            BackendKind::Int8Dense => QuantizedViT::VARIANT_DENSE,
            BackendKind::Int8Adaptive => QuantizedViT::VARIANT_ADAPTIVE,
        }
    }

    /// `true` for the int8 kinds (which report packed-DSP-equivalent MACs
    /// and are held to the top-1 agreement gate against the float dense
    /// reference).
    pub fn is_quantized(self) -> bool {
        matches!(self, BackendKind::Int8Dense | BackendKind::Int8Adaptive)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_distinct_labels() {
        for (i, a) in BackendKind::ALL.iter().enumerate() {
            for b in &BackendKind::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
        assert_eq!(BackendKind::ALL[0], BackendKind::Dense);
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(BackendKind::Int8Adaptive.to_string(), "int8-adaptive");
        assert_eq!(BackendKind::AdaptivePruned.to_string(), "adaptive-pruned");
        assert_eq!(BackendKind::ClsAttn.to_string(), "cls-attn");
        assert_eq!(BackendKind::TokenMerge.to_string(), "token-merge");
        assert_eq!(BackendKind::TopK.to_string(), "topk-attn");
    }
}
