//! placeholder (implementation in progress)
