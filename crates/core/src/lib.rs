//! # heatvit
//!
//! The unifying layer of the [HeatViT](https://arxiv.org/abs/2211.08110)
//! reproduction workspace: one batched inference engine over every model
//! variant.
//!
//! The lower crates each own one concern — `heatvit-tensor` (dense `f32`
//! math), `heatvit-nn` (autograd + layers), `heatvit-vit` (the backbone),
//! `heatvit-selector` (adaptive and static token pruning),
//! `heatvit-tfprune` (training-free pruning: CLS-attention hard drop, token
//! mergence, fixed-layer top-k), `heatvit-quant` (int8 arithmetic),
//! `heatvit-data` (synthetic datasets) — but they expose *different*
//! single-image inference APIs. This crate folds them into one:
//!
//! * [`InferenceModel`] — implemented by `VisionTransformer`, `PrunedViT`,
//!   `StaticPrunedViT`, the training-free `ClsAttnPrunedViT` /
//!   `TokenMergeViT` / `TopKPrunedViT`, and the int8 `QuantizedViT` (dense
//!   or adaptively pruned): classify one image, report per-block token
//!   counts and a MAC estimate (packed-DSP-equivalent for the int8
//!   backend);
//! * [`Backend`] / [`BackendKind`] — the type-erased handle over those
//!   model types, so servers and table-driven harnesses run one
//!   `Engine<Backend>` whose concrete variant is chosen at runtime
//!   (iterate [`BackendKind::ALL`] instead of monomorphizing per variant);
//! * [`Engine`] — built via [`Engine::builder`] ([`EngineBuilder`]), drives
//!   an `InferenceModel` over batches with a checkout pool of persistent
//!   scratch workspaces (no per-image allocation of activations,
//!   keep-masks, or repacking buffers), sharding each batch across the
//!   configured scoped worker threads; every inference entry point takes
//!   `&self`, so concurrent submitters share one engine, and the merged
//!   [`BatchOutput`] logits are bit-identical to the per-image path at
//!   every thread count;
//! * [`Engine::run_epoch`] — the dataset-level harness reporting accuracy,
//!   throughput, and mean cost per variant, the substrate for every
//!   dense-vs-pruned comparison in the paper.
//!
//! The request/response serving front-end over this engine — dynamic
//! batching, deadlines, priorities — lives in the `heatvit-serve` crate.
//!
//! ## Example: comparing variants under one harness
//!
//! ```
//! use heatvit::{Engine, InferenceModel};
//! use heatvit_selector::{PrunedViT, TokenSelector};
//! use heatvit_tensor::Tensor;
//! use heatvit_vit::{ViTConfig, VisionTransformer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let backbone = VisionTransformer::new(ViTConfig::micro(8), &mut rng);
//! let mut pruned = PrunedViT::new(backbone.clone());
//! pruned.insert_selector(3, TokenSelector::new(48, 3, &mut rng));
//!
//! let images: Vec<Tensor> = (0..4)
//!     .map(|_| Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng))
//!     .collect();
//!
//! let dense_out = Engine::builder(backbone).build().infer_batch(&images);
//! let pruned_out = Engine::builder(pruned).build().infer_batch(&images);
//! assert_eq!(dense_out.logits.dims(), pruned_out.logits.dims());
//! // The pruned variant never carries more than one extra (package) token.
//! let dense_tokens = dense_out.mean_tokens_per_block();
//! let pruned_tokens = pruned_out.mean_tokens_per_block();
//! for (p, d) in pruned_tokens.iter().zip(dense_tokens.iter()) {
//!     assert!(p <= &(d + 1.0));
//! }
//! ```

#![warn(missing_docs)]

mod backend;
mod engine;
mod latency;
mod model;

pub use backend::{Backend, BackendKind};
pub use engine::{
    BatchOutput, Engine, EngineBuilder, EngineConfig, EngineReport, ThreadCount, MAX_AUTO_THREADS,
};
pub use latency::{rank_by_predicted, CostProfile, LatencyModel, MacProxyModel, MeasuredEwma};
pub use model::{InferenceModel, ModelOutput};

// Re-export the workspace crates so `heatvit` works as a facade.
pub use heatvit_data as data;
pub use heatvit_nn as nn;
pub use heatvit_quant as quant;
pub use heatvit_selector as selector;
pub use heatvit_telemetry as telemetry;
pub use heatvit_tensor as tensor;
pub use heatvit_tfprune as tfprune;
pub use heatvit_vit as vit;
