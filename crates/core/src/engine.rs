//! The batched inference [`Engine`].

use crate::model::{InferenceModel, ModelOutput};
use heatvit_data::{Batch, Loader};
use heatvit_nn::accuracy;
use heatvit_selector::PruneScratch;
use heatvit_tensor::Tensor;
use std::time::{Duration, Instant};

/// Result of pushing one batch of images through an [`Engine`].
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// Stacked classification logits `[B, num_classes]`; row `i` is
    /// bit-identical to the per-image `infer` logits of image `i`.
    pub logits: Tensor,
    /// Per image: token count entering each encoder block.
    pub tokens_per_block: Vec<Vec<usize>>,
    /// Per image: multiply–accumulate estimate at actual token counts.
    pub macs: Vec<u64>,
    /// Wall-clock time of the whole batch.
    pub elapsed: Duration,
}

impl BatchOutput {
    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        self.macs.len()
    }

    /// `true` if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.macs.is_empty()
    }

    /// Predicted class per image.
    pub fn predictions(&self) -> Vec<usize> {
        self.logits.argmax_rows()
    }

    /// Images per second over the batch's wall-clock time.
    pub fn throughput(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.len() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Mean MAC count per image.
    pub fn mean_macs(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.macs.iter().sum::<u64>() as f64 / self.len() as f64
    }

    /// Mean token count entering each block, averaged over the batch —
    /// the "average kept tokens" curve of paper Fig. 4.
    pub fn mean_tokens_per_block(&self) -> Vec<f64> {
        if self.is_empty() {
            return Vec::new();
        }
        let depth = self.tokens_per_block[0].len();
        let mut sums = vec![0.0f64; depth];
        for per_image in &self.tokens_per_block {
            for (s, &n) in sums.iter_mut().zip(per_image.iter()) {
                *s += n as f64;
            }
        }
        for s in &mut sums {
            *s /= self.len() as f64;
        }
        sums
    }
}

/// Aggregate statistics of a whole-dataset run ([`Engine::run_epoch`]).
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Images processed.
    pub images: usize,
    /// Batches processed.
    pub batches: usize,
    /// Classification accuracy against the dataset labels.
    pub accuracy: f32,
    /// Images per second across all batches (inference time only).
    pub images_per_sec: f64,
    /// Mean MAC count per image.
    pub mean_macs: f64,
    /// Mean token count entering the final block.
    pub mean_final_tokens: f64,
}

/// A batched inference engine: one model variant plus a persistent scratch
/// workspace.
///
/// The engine amortizes dispatch over a batch — activation, repacking, and
/// keep-mask buffers are allocated once and reused for every image — and
/// reports throughput alongside the per-image cost model. Because every
/// variant implements [`InferenceModel`] through its own bit-exact `infer`
/// arithmetic, engine outputs are directly comparable across dense,
/// adaptive-pruned, and static-pruned models.
///
/// # Examples
///
/// ```
/// use heatvit::{Engine, InferenceModel};
/// use heatvit_tensor::Tensor;
/// use heatvit_vit::{ViTConfig, VisionTransformer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = VisionTransformer::new(ViTConfig::test_tiny(4), &mut rng);
/// let images: Vec<Tensor> = (0..3)
///     .map(|_| Tensor::rand_uniform(&[3, 16, 16], 0.0, 1.0, &mut rng))
///     .collect();
/// let mut engine = Engine::new(model);
/// let out = engine.infer_batch(&images);
/// assert_eq!(out.logits.dims(), &[3, 4]);
/// // Batched logits match the per-image path bitwise.
/// let single = engine.model().infer(&images[1]);
/// assert_eq!(out.logits.row(1), single.row(0));
/// ```
#[derive(Debug)]
pub struct Engine<M: InferenceModel> {
    model: M,
    scratch: PruneScratch,
}

impl<M: InferenceModel> Engine<M> {
    /// Wraps a model with a fresh scratch workspace.
    pub fn new(model: M) -> Self {
        Self {
            model,
            scratch: PruneScratch::default(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Classifies one image through the shared scratch workspace.
    pub fn infer_one(&mut self, image: &Tensor) -> ModelOutput {
        self.model.infer_one(image, &mut self.scratch)
    }

    /// Pushes a batch of images through the model, reusing one scratch
    /// workspace across the whole batch.
    pub fn infer_batch(&mut self, images: &[Tensor]) -> BatchOutput {
        self.infer_batch_iter(images.iter())
    }

    /// [`Engine::infer_batch`] over any iterator of borrowed images (used
    /// directly by the loader integration, whose batches hold `&Sample`).
    pub fn infer_batch_iter<'a>(
        &mut self,
        images: impl Iterator<Item = &'a Tensor>,
    ) -> BatchOutput {
        let classes = self.model.config().num_classes;
        let start = Instant::now();
        let mut logits_data: Vec<f32> = Vec::new();
        let mut tokens_per_block = Vec::new();
        let mut macs = Vec::new();
        for image in images {
            let out = self.model.infer_one(image, &mut self.scratch);
            debug_assert_eq!(out.logits.dims(), &[1, classes]);
            logits_data.extend_from_slice(out.logits.data());
            tokens_per_block.push(out.tokens_per_block);
            macs.push(out.macs);
        }
        let elapsed = start.elapsed();
        let batch = macs.len();
        BatchOutput {
            logits: Tensor::from_vec(logits_data, &[batch, classes]),
            tokens_per_block,
            macs,
            elapsed,
        }
    }

    /// Classifies one loader batch.
    pub fn infer_samples(&mut self, batch: &Batch<'_>) -> BatchOutput {
        self.infer_batch_iter(batch.samples.iter().map(|s| &s.image))
    }

    /// Runs one full epoch of `loader` (no shuffling effect on results other
    /// than order), aggregating accuracy, throughput, and cost.
    pub fn run_epoch(&mut self, loader: &Loader<'_>, epoch: u64) -> EngineReport {
        let mut images = 0usize;
        let mut batches = 0usize;
        let mut correct = 0.0f64;
        let mut inference_time = Duration::ZERO;
        let mut total_macs = 0u64;
        let mut final_tokens = 0u64;
        for batch in loader.iter_epoch(epoch) {
            let out = self.infer_samples(&batch);
            let labels = batch.labels();
            correct += accuracy(&out.logits, &labels) as f64 * labels.len() as f64;
            images += out.len();
            batches += 1;
            inference_time += out.elapsed;
            total_macs += out.macs.iter().sum::<u64>();
            final_tokens += out
                .tokens_per_block
                .iter()
                .map(|t| *t.last().unwrap_or(&0) as u64)
                .sum::<u64>();
        }
        EngineReport {
            images,
            batches,
            accuracy: if images == 0 {
                0.0
            } else {
                (correct / images as f64) as f32
            },
            images_per_sec: if images == 0 {
                0.0
            } else {
                images as f64 / inference_time.as_secs_f64().max(1e-12)
            },
            mean_macs: if images == 0 {
                0.0
            } else {
                total_macs as f64 / images as f64
            },
            mean_final_tokens: if images == 0 {
                0.0
            } else {
                final_tokens as f64 / images as f64
            },
        }
    }
}
