//! Training-free ↔ dense agreement: each training-free pruned backend must
//! keep its top-1 predictions close to the dense float reference on a
//! seeded synthetic batch, and token *mergence* must agree at least as
//! often as the CLS-attention *hard drop* at the identical keep rate —
//! folding pruned tokens into their hosts preserves information that
//! discarding destroys, at the same downstream MAC budget.

use heatvit::{Engine, InferenceModel};
use heatvit_data::{SyntheticConfig, SyntheticDataset};
use heatvit_tensor::Tensor;
use heatvit_tfprune::{ClsAttnPrunedViT, TfStage, TokenMergeViT, TopKPrunedViT, TopKStage};
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EVAL_IMAGES: usize = 40;
/// Minimum top-1 agreement with the dense reference for the ratio-stage
/// variants (keep 0.7 then 0.6 — the demo schedule); both measure 1.000 on
/// this fixture.
const RATIO_AGREEMENT_FLOOR: f64 = 0.90;
/// Minimum top-1 agreement for the fixed-layer top-k variant (keeps 12
/// then 7 of 16 patch tokens); measures 0.950 on this fixture.
const TOPK_AGREEMENT_FLOOR: f64 = 0.85;

fn float_model() -> VisionTransformer {
    let mut rng = StdRng::seed_from_u64(7);
    VisionTransformer::new(ViTConfig::micro(8), &mut rng)
}

fn batch(count: usize, seed: u64) -> Vec<Tensor> {
    SyntheticDataset::generate(SyntheticConfig::micro(), count, seed)
        .iter()
        .map(|s| s.image.clone())
        .collect()
}

/// The demo ratio schedule every ratio variant shares (equal keep rates:
/// the mergence-vs-hard-drop comparison is only meaningful when both see
/// the same token budget).
fn stages() -> Vec<TfStage> {
    vec![
        TfStage {
            block: 1,
            keep_ratio: 0.7,
        },
        TfStage {
            block: 3,
            keep_ratio: 0.6,
        },
    ]
}

fn predictions<M: InferenceModel>(model: M, images: &[Tensor]) -> Vec<usize> {
    Engine::builder(model)
        .build()
        .infer_batch(images)
        .predictions()
}

fn agreement(preds: &[usize], reference: &[usize]) -> f64 {
    let agree = preds.iter().zip(reference).filter(|(a, b)| a == b).count();
    agree as f64 / reference.len() as f64
}

#[test]
fn training_free_backends_agree_with_dense() {
    let dense = float_model();
    let images = batch(EVAL_IMAGES, 11);
    let reference = predictions(dense.clone(), &images);

    let cls = agreement(
        &predictions(ClsAttnPrunedViT::new(dense.clone(), stages()), &images),
        &reference,
    );
    let merge = agreement(
        &predictions(TokenMergeViT::new(dense.clone(), stages()), &images),
        &reference,
    );
    let topk = agreement(
        &predictions(
            TopKPrunedViT::new(
                dense,
                vec![
                    TopKStage { block: 2, keep: 12 },
                    TopKStage { block: 4, keep: 7 },
                ],
            ),
            &images,
        ),
        &reference,
    );

    println!("agreement vs dense: cls-attn {cls:.3}, token-merge {merge:.3}, topk-attn {topk:.3}");
    assert!(
        cls >= RATIO_AGREEMENT_FLOOR,
        "cls-attn agreement {cls:.3} < {RATIO_AGREEMENT_FLOOR}"
    );
    assert!(
        merge >= RATIO_AGREEMENT_FLOOR,
        "token-merge agreement {merge:.3} < {RATIO_AGREEMENT_FLOOR}"
    );
    assert!(
        topk >= TOPK_AGREEMENT_FLOOR,
        "topk-attn agreement {topk:.3} < {TOPK_AGREEMENT_FLOOR}"
    );
    // The paper's mergence claim at equal keep rates: folding ≥ dropping.
    assert!(
        merge >= cls,
        "token mergence ({merge:.3}) must agree with dense at least as often \
         as the hard drop ({cls:.3}) at the same keep rate"
    );
}
