//! Batched-vs-single-image parity: `Engine::infer_batch` must be
//! bit-identical to the per-image `infer` paths for every model variant,
//! the thread-sharded engine must be bit-identical to the sequential one at
//! every worker count, and pruning must be monotone across selector stages.

use heatvit::{Engine, InferenceModel};
use heatvit_data::{Loader, SyntheticConfig, SyntheticDataset};
use heatvit_quant::{QuantPruneStage, QuantizedViT};
use heatvit_selector::{PrunedViT, StaticPrunedViT, StaticRule, StaticStage, TokenSelector};
use heatvit_tensor::Tensor;
use heatvit_tfprune::{ClsAttnPrunedViT, TfStage, TokenMergeViT, TopKPrunedViT, TopKStage};
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn backbone(rng: &mut StdRng) -> VisionTransformer {
    VisionTransformer::new(ViTConfig::micro(4), rng)
}

fn pruned(rng: &mut StdRng) -> PrunedViT {
    let backbone = backbone(rng);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut model = PrunedViT::new(backbone);
    model.insert_selector(1, TokenSelector::new(dim, heads, rng));
    model.insert_selector(3, TokenSelector::new(dim, heads, rng));
    model
}

fn static_pruned(rng: &mut StdRng) -> StaticPrunedViT {
    StaticPrunedViT::new(
        backbone(rng),
        vec![
            StaticStage {
                block: 1,
                keep_ratio: 0.7,
            },
            StaticStage {
                block: 3,
                keep_ratio: 0.6,
            },
        ],
        StaticRule::CliffAttention,
        0,
    )
}

fn tf_stages() -> Vec<TfStage> {
    vec![
        TfStage {
            block: 1,
            keep_ratio: 0.7,
        },
        TfStage {
            block: 3,
            keep_ratio: 0.6,
        },
    ]
}

fn cls_attn(rng: &mut StdRng) -> ClsAttnPrunedViT {
    ClsAttnPrunedViT::new(backbone(rng), tf_stages())
}

fn token_merge(rng: &mut StdRng) -> TokenMergeViT {
    TokenMergeViT::new(backbone(rng), tf_stages())
}

fn topk(rng: &mut StdRng) -> TopKPrunedViT {
    TopKPrunedViT::new(
        backbone(rng),
        vec![
            TopKStage { block: 2, keep: 10 },
            TopKStage { block: 4, keep: 6 },
        ],
    )
}

fn quantized(rng: &mut StdRng) -> QuantizedViT {
    QuantizedViT::from_float(&backbone(rng)).with_prune_stages(vec![
        QuantPruneStage {
            block: 2,
            attn_frac: 0.9,
        },
        QuantPruneStage {
            block: 4,
            attn_frac: 0.9,
        },
    ])
}

fn images(rng: &mut StdRng, count: usize) -> Vec<Tensor> {
    (0..count)
        .map(|_| Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, rng))
        .collect()
}

/// Asserts that every batched logit row equals the per-image path bitwise.
fn assert_batch_matches_single<M: InferenceModel>(
    model: M,
    single_logits: &[Tensor],
    images: &[Tensor],
) {
    let engine = Engine::builder(model).build();
    let out = engine.infer_batch(images);
    assert_eq!(out.logits.dims(), &[images.len(), 4]);
    for (i, single) in single_logits.iter().enumerate() {
        assert_eq!(
            out.logits.row(i),
            single.data(),
            "batched row {i} diverges from per-image inference for {}",
            engine.model().variant()
        );
    }
    // The same batch re-run through the warm scratch must also be stable.
    let again = engine.infer_batch(images);
    assert_eq!(again.logits.data(), out.logits.data());
}

#[test]
fn dense_batch_is_bitwise_identical_to_single() {
    let mut rng = StdRng::seed_from_u64(7);
    let model = backbone(&mut rng);
    let imgs = images(&mut rng, 5);
    let single: Vec<Tensor> = imgs.iter().map(|im| model.infer(im)).collect();
    assert_batch_matches_single(model, &single, &imgs);
}

#[test]
fn adaptive_pruned_batch_is_bitwise_identical_to_single() {
    let mut rng = StdRng::seed_from_u64(8);
    let model = pruned(&mut rng);
    let imgs = images(&mut rng, 5);
    let single: Vec<Tensor> = imgs.iter().map(|im| model.infer(im).logits).collect();
    assert_batch_matches_single(model, &single, &imgs);
}

#[test]
fn static_pruned_batch_is_bitwise_identical_to_single() {
    let mut rng = StdRng::seed_from_u64(9);
    let model = static_pruned(&mut rng);
    let imgs = images(&mut rng, 5);
    let single: Vec<Tensor> = imgs.iter().map(|im| model.infer(im).logits).collect();
    assert_batch_matches_single(model, &single, &imgs);
}

#[test]
fn cls_attn_batch_is_bitwise_identical_to_single() {
    let mut rng = StdRng::seed_from_u64(30);
    let model = cls_attn(&mut rng);
    let imgs = images(&mut rng, 5);
    let single: Vec<Tensor> = imgs.iter().map(|im| model.infer(im).logits).collect();
    assert_batch_matches_single(model, &single, &imgs);
}

#[test]
fn token_merge_batch_is_bitwise_identical_to_single() {
    let mut rng = StdRng::seed_from_u64(31);
    let model = token_merge(&mut rng);
    let imgs = images(&mut rng, 5);
    let single: Vec<Tensor> = imgs.iter().map(|im| model.infer(im).logits).collect();
    assert_batch_matches_single(model, &single, &imgs);
}

#[test]
fn topk_batch_is_bitwise_identical_to_single() {
    let mut rng = StdRng::seed_from_u64(32);
    let model = topk(&mut rng);
    let imgs = images(&mut rng, 5);
    let single: Vec<Tensor> = imgs.iter().map(|im| model.infer(im).logits).collect();
    assert_batch_matches_single(model, &single, &imgs);
}

/// Asserts that the thread-sharded engine reproduces the sequential
/// engine's `logits`, `tokens_per_block`, and `macs` bitwise at every
/// tested worker count — including more workers than images.
///
/// `build` must be deterministic (each call returns an identical model) so
/// every engine runs the same weights.
fn assert_parallel_matches_sequential<M: InferenceModel>(build: impl Fn() -> M, images: &[Tensor]) {
    let sequential = Engine::builder(build()).build().infer_batch(images);
    for threads in [1, 2, 3] {
        let engine = Engine::builder(build()).threads(threads).build();
        let parallel = engine.infer_batch(images);
        let variant = engine.model().variant();
        assert_eq!(parallel.logits.dims(), sequential.logits.dims());
        assert_eq!(
            parallel.logits.data(),
            sequential.logits.data(),
            "{variant}: sharded logits diverge at {threads} threads"
        );
        assert_eq!(
            parallel.tokens_per_block, sequential.tokens_per_block,
            "{variant}: sharded token counts diverge at {threads} threads"
        );
        assert_eq!(
            parallel.macs, sequential.macs,
            "{variant}: sharded MACs diverge at {threads} threads"
        );
        // A warm re-run through the same worker pool must also be stable.
        let again = engine.infer_batch(images);
        assert_eq!(again.logits.data(), sequential.logits.data());
    }
}

#[test]
fn parallel_dense_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(20);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| backbone(&mut StdRng::seed_from_u64(7)), &imgs);
}

#[test]
fn parallel_adaptive_pruned_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(21);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| pruned(&mut StdRng::seed_from_u64(8)), &imgs);
}

#[test]
fn parallel_static_pruned_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(22);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| static_pruned(&mut StdRng::seed_from_u64(9)), &imgs);
}

#[test]
fn parallel_cls_attn_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(33);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| cls_attn(&mut StdRng::seed_from_u64(30)), &imgs);
}

#[test]
fn parallel_token_merge_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(34);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| token_merge(&mut StdRng::seed_from_u64(31)), &imgs);
}

#[test]
fn parallel_topk_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(35);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| topk(&mut StdRng::seed_from_u64(32)), &imgs);
}

#[test]
fn parallel_int8_matches_sequential_bitwise() {
    let mut rng = StdRng::seed_from_u64(23);
    let imgs = images(&mut rng, 5);
    assert_parallel_matches_sequential(|| quantized(&mut StdRng::seed_from_u64(13)), &imgs);
}

#[test]
fn parallel_handles_batches_smaller_than_the_pool() {
    let mut rng = StdRng::seed_from_u64(24);
    // 2 images across 3 workers: one worker idles, outputs still bitwise.
    let imgs = images(&mut rng, 2);
    assert_parallel_matches_sequential(|| pruned(&mut StdRng::seed_from_u64(8)), &imgs);
}

#[test]
fn parallel_handles_an_empty_batch() {
    let mut rng = StdRng::seed_from_u64(25);
    let engine = Engine::builder(backbone(&mut rng)).threads(3).build();
    let out = engine.infer_batch(&[]);
    assert!(out.is_empty());
    assert_eq!(out.logits.dims(), &[0, 4]);
    assert!(out.tokens_per_block.is_empty());
    assert!(out.macs.is_empty());
    assert!(out.mean_tokens_per_block().is_empty());
    assert_eq!(out.throughput(), 0.0);
}

#[test]
fn parallel_run_epoch_matches_sequential_statistics() {
    let dataset = SyntheticDataset::generate(SyntheticConfig::micro(), 10, 1);
    let loader = Loader::new(&dataset, 4, false, 0);
    let seq = Engine::builder(pruned(&mut StdRng::seed_from_u64(8)))
        .build()
        .run_epoch(&loader, 0);
    let par = Engine::builder(pruned(&mut StdRng::seed_from_u64(8)))
        .threads(3)
        .build()
        .run_epoch(&loader, 0);
    assert_eq!(par.images, seq.images);
    assert_eq!(par.batches, seq.batches);
    assert_eq!(par.accuracy, seq.accuracy);
    assert_eq!(par.mean_macs, seq.mean_macs);
    assert_eq!(par.mean_final_tokens, seq.mean_final_tokens);
}

#[test]
fn boxed_models_run_under_the_engine() {
    let model: Box<dyn InferenceModel> = Box::new(pruned(&mut StdRng::seed_from_u64(8)));
    let imgs = images(&mut StdRng::seed_from_u64(26), 4);
    let boxed = Engine::builder(model).threads(2).build().infer_batch(&imgs);
    let direct = Engine::builder(pruned(&mut StdRng::seed_from_u64(8)))
        .build()
        .infer_batch(&imgs);
    assert_eq!(boxed.logits.data(), direct.logits.data());
    assert_eq!(boxed.macs, direct.macs);
}

#[test]
fn pruned_token_counts_are_monotone_across_stages() {
    let mut rng = StdRng::seed_from_u64(10);
    let model = pruned(&mut rng);
    let selector_blocks = model.selector_blocks();
    let engine = Engine::builder(model).build();
    for image in images(&mut rng, 8) {
        let out = engine.infer_one(&image);
        // Patch-token counts entering each selector stage may only shrink
        // (the package token is excluded: at most one non-patch extra).
        let mut last = usize::MAX;
        for &b in &selector_blocks {
            let n = out.tokens_per_block[b];
            assert!(
                n <= last,
                "token count grew entering selector block {b}: {n} > {last}"
            );
            last = n;
        }
        // And no block may ever exceed the dense count plus a package token.
        let dense = engine.model().config().num_tokens();
        for &n in &out.tokens_per_block {
            assert!(n <= dense + 1);
        }
    }
}

#[test]
fn static_batch_entry_points_agree() {
    let mut rng = StdRng::seed_from_u64(11);
    let model = static_pruned(&mut rng);
    let imgs = images(&mut rng, 3);
    let batched = model.infer_batch(&imgs);
    for (inference, image) in batched.iter().zip(imgs.iter()) {
        assert_eq!(inference.logits.data(), model.infer(image).logits.data());
    }
}

#[test]
fn engine_runs_a_loader_epoch() {
    let mut rng = StdRng::seed_from_u64(12);
    let model = pruned(&mut rng);
    let dataset = SyntheticDataset::generate(SyntheticConfig::micro(), 12, 0);
    let loader = Loader::new(&dataset, 4, false, 0);
    let engine = Engine::builder(model).build();
    let report = engine.run_epoch(&loader, 0);
    assert_eq!(report.images, 12);
    assert_eq!(report.batches, 3);
    assert!((0.0..=1.0).contains(&report.accuracy));
    assert!(report.images_per_sec > 0.0);
    assert!(report.mean_macs > 0.0);
    assert!(report.mean_final_tokens > 0.0);
}
