//! The type-erased [`Backend`] handle: dispatch must be bit-identical to
//! the concrete model, kinds/labels must round-trip, the builder-made
//! engine must serve concurrent submitters through `&self`, and the
//! deprecated constructor shims must keep working.

use heatvit::{Backend, BackendKind, Engine, InferenceModel, ThreadCount};
use heatvit_quant::{QuantPruneStage, QuantizedViT};
use heatvit_selector::{PrunedViT, StaticPrunedViT, StaticRule, StaticStage, TokenSelector};
use heatvit_tensor::Tensor;
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn backbone(seed: u64) -> VisionTransformer {
    VisionTransformer::new(ViTConfig::micro(4), &mut StdRng::seed_from_u64(seed))
}

fn pruned(seed: u64) -> PrunedViT {
    let mut rng = StdRng::seed_from_u64(seed);
    let backbone = backbone(seed);
    let dim = backbone.config().embed_dim;
    let heads = backbone.config().num_heads;
    let mut model = PrunedViT::new(backbone);
    model.insert_selector(1, TokenSelector::new(dim, heads, &mut rng));
    model
}

fn static_pruned(seed: u64) -> StaticPrunedViT {
    StaticPrunedViT::new(
        backbone(seed),
        vec![StaticStage {
            block: 1,
            keep_ratio: 0.7,
        }],
        StaticRule::CliffAttention,
        0,
    )
}

fn quantized_adaptive(seed: u64) -> QuantizedViT {
    QuantizedViT::from_float(&backbone(seed)).with_prune_stages(vec![QuantPruneStage {
        block: 2,
        attn_frac: 0.9,
    }])
}

fn images(seed: u64, count: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| Tensor::rand_uniform(&[3, 32, 32], 0.0, 1.0, &mut rng))
        .collect()
}

/// One `Engine<Backend>` per kind must reproduce the concrete engine's
/// batch output bitwise.
fn assert_backend_matches_concrete<M>(concrete: M, erased: Backend, kind: BackendKind)
where
    M: InferenceModel,
{
    assert_eq!(erased.kind(), kind);
    assert_eq!(erased.variant(), kind.label());
    let imgs = images(99, 4);
    let direct = Engine::builder(concrete).build().infer_batch(&imgs);
    let via_backend = Engine::builder(erased)
        .threads(2)
        .build()
        .infer_batch(&imgs);
    assert_eq!(via_backend.logits.data(), direct.logits.data());
    assert_eq!(via_backend.tokens_per_block, direct.tokens_per_block);
    assert_eq!(via_backend.macs, direct.macs);
}

#[test]
fn backend_dense_dispatch_is_bitwise() {
    assert_backend_matches_concrete(backbone(1), Backend::from(backbone(1)), BackendKind::Dense);
}

#[test]
fn backend_adaptive_dispatch_is_bitwise() {
    assert_backend_matches_concrete(
        pruned(2),
        Backend::from(pruned(2)),
        BackendKind::AdaptivePruned,
    );
}

#[test]
fn backend_static_dispatch_is_bitwise() {
    assert_backend_matches_concrete(
        static_pruned(3),
        Backend::from(static_pruned(3)),
        BackendKind::StaticPruned,
    );
}

#[test]
fn backend_int8_dispatch_is_bitwise() {
    let dense = QuantizedViT::from_float(&backbone(4));
    assert_backend_matches_concrete(dense.clone(), Backend::from(dense), BackendKind::Int8Dense);
    assert_backend_matches_concrete(
        quantized_adaptive(4),
        Backend::from(quantized_adaptive(4)),
        BackendKind::Int8Adaptive,
    );
}

#[test]
fn backend_dense_macs_match_concrete() {
    let concrete = pruned(5);
    let expected = InferenceModel::dense_macs(&concrete);
    assert_eq!(
        InferenceModel::dense_macs(&Backend::from(concrete)),
        expected
    );
}

#[test]
fn cloned_backend_is_bitwise_identical() {
    let backend = Backend::from(static_pruned(6));
    let replica = backend.clone();
    let imgs = images(7, 2);
    let a = Engine::builder(backend).build().infer_batch(&imgs);
    let b = Engine::builder(replica).build().infer_batch(&imgs);
    assert_eq!(a.logits.data(), b.logits.data());
}

/// The whole point of the checkout pool: one engine, `&self`, shared across
/// submitter threads, each getting per-image results bit-identical to the
/// sequential reference.
#[test]
fn shared_engine_serves_concurrent_submitters() {
    let engine = Engine::builder(Backend::from(pruned(8))).threads(2).build();
    let imgs = images(9, 6);
    let reference = engine.infer_batch(&imgs);
    std::thread::scope(|scope| {
        for (i, img) in imgs.iter().enumerate() {
            let engine = &engine;
            let expect = reference.logits.row(i).to_vec();
            scope.spawn(move || {
                let out = engine.infer_one(img);
                assert_eq!(out.logits.data(), &expect[..], "submitter {i} diverged");
            });
        }
    });
}

#[test]
fn builder_resolves_auto_threads_at_build() {
    let engine = Engine::builder(backbone(10)).auto_threads().build();
    assert!(engine.threads() >= 1);
    assert!(engine.threads() <= heatvit::MAX_AUTO_THREADS);
    assert_eq!(engine.config().threads, ThreadCount::Auto);
}

#[test]
fn set_threads_reconfigures_in_place() {
    let mut engine = Engine::builder(backbone(11)).build();
    assert_eq!(engine.threads(), 1);
    engine.set_threads(3);
    assert_eq!(engine.threads(), 3);
    assert_eq!(engine.config().threads, ThreadCount::Fixed(3));
    let imgs = images(12, 4);
    let sharded = engine.infer_batch(&imgs);
    let sequential = Engine::builder(backbone(11)).build().infer_batch(&imgs);
    assert_eq!(sharded.logits.data(), sequential.logits.data());
}

/// The pre-builder constructors stay as thin shims; this is the one place
/// that intentionally exercises them.
#[allow(deprecated)]
#[test]
fn deprecated_constructor_shims_still_build_working_engines() {
    let imgs = images(13, 3);
    let reference = Engine::builder(backbone(1)).build().infer_batch(&imgs);
    let via_new = Engine::new(backbone(1)).infer_batch(&imgs);
    let via_threads = Engine::with_threads(backbone(1), 2).infer_batch(&imgs);
    let via_config =
        Engine::with_config(backbone(1), heatvit::EngineConfig::with_threads(2)).infer_batch(&imgs);
    assert_eq!(via_new.logits.data(), reference.logits.data());
    assert_eq!(via_threads.logits.data(), reference.logits.data());
    assert_eq!(via_config.logits.data(), reference.logits.data());
}
