//! Int8 ↔ float agreement: the quantized backend must track the float
//! model closely enough that logits stay within a relative-Frobenius
//! tolerance and top-1 predictions agree on ≥95 % of a seeded synthetic
//! batch — in both dynamic and calibrated activation-quantization modes.

use heatvit::{Engine, InferenceModel};
use heatvit_data::{SyntheticConfig, SyntheticDataset};
use heatvit_quant::{QuantizedViT, DSP_PACKING_FACTOR};
use heatvit_tensor::Tensor;
use heatvit_vit::{ViTConfig, VisionTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EVAL_IMAGES: usize = 40;
const CALIB_IMAGES: usize = 8;
/// Maximum allowed `‖q − f‖_F / ‖f‖_F` over the stacked batch logits.
const REL_FROBENIUS_TOL: f32 = 0.35;
/// Minimum fraction of images whose top-1 prediction matches the float model.
const TOP1_AGREEMENT: f64 = 0.95;

fn float_model() -> VisionTransformer {
    let mut rng = StdRng::seed_from_u64(7);
    VisionTransformer::new(ViTConfig::micro(8), &mut rng)
}

fn batch(count: usize, seed: u64) -> Vec<Tensor> {
    SyntheticDataset::generate(SyntheticConfig::micro(), count, seed)
        .iter()
        .map(|s| s.image.clone())
        .collect()
}

/// Stacked logits + predictions of any `InferenceModel` over a batch.
fn run<M: InferenceModel>(model: M, images: &[Tensor]) -> (Tensor, Vec<usize>) {
    let engine = Engine::builder(model).build();
    let out = engine.infer_batch(images);
    let preds = out.predictions();
    (out.logits, preds)
}

fn assert_close(mode: &str, quant: &Tensor, float: &Tensor, qp: &[usize], fp: &[usize]) {
    let rel = quant.sub(float).norm() / float.norm().max(1e-9);
    assert!(
        rel < REL_FROBENIUS_TOL,
        "{mode}: relative Frobenius logit error {rel} ≥ {REL_FROBENIUS_TOL}"
    );
    let agree = qp.iter().zip(fp.iter()).filter(|(a, b)| a == b).count();
    let total = fp.len();
    let frac = agree as f64 / total as f64;
    assert!(
        frac >= TOP1_AGREEMENT,
        "{mode}: top-1 agreement {agree}/{total} = {frac:.3} < {TOP1_AGREEMENT}"
    );
}

#[test]
fn int8_dense_agrees_with_float_in_both_quant_modes() {
    let float = float_model();
    let images = batch(EVAL_IMAGES, 11);
    let (flogits, fpreds) = run(float.clone(), &images);

    // Dynamic per-tensor max-abs (uncalibrated fallback).
    let dynamic = QuantizedViT::from_float(&float);
    assert!(!dynamic.is_calibrated());
    let (qlogits, qpreds) = run(dynamic, &images);
    assert_close("dynamic", &qlogits, &flogits, &qpreds, &fpreds);

    // Static scales calibrated on a held-out batch (different seed).
    let mut calibrated = QuantizedViT::from_float(&float);
    calibrated.calibrate(&batch(CALIB_IMAGES, 99));
    assert!(calibrated.is_calibrated());
    let (qlogits, qpreds) = run(calibrated, &images);
    assert_close("calibrated", &qlogits, &flogits, &qpreds, &fpreds);
}

#[test]
fn int8_adaptive_stays_close_to_float_under_mild_pruning() {
    let float = float_model();
    let images = batch(EVAL_IMAGES, 12);
    let (flogits, fpreds) = run(float.clone(), &images);

    let mut adaptive = QuantizedViT::from_float(&float).with_prune_stages(vec![
        heatvit_quant::QuantPruneStage {
            block: 2,
            attn_frac: 0.9,
        },
        heatvit_quant::QuantPruneStage {
            block: 4,
            attn_frac: 0.9,
        },
    ]);
    adaptive.calibrate(&batch(CALIB_IMAGES, 99));
    let (qlogits, qpreds) = run(adaptive, &images);
    assert_close("adaptive", &qlogits, &flogits, &qpreds, &fpreds);
}

#[test]
fn engine_batched_path_is_bit_identical_to_single_image_int8() {
    let float = float_model();
    let images = batch(6, 13);
    let qmodel = QuantizedViT::from_float(&float);
    let reference: Vec<Tensor> = images.iter().map(|i| qmodel.infer(i).logits).collect();
    let engine = Engine::builder(qmodel).build();
    let out = engine.infer_batch(&images);
    for (i, single) in reference.iter().enumerate() {
        assert_eq!(out.logits.row(i), single.data(), "image {i} diverged");
    }
    assert_eq!(engine.model().variant(), "int8-dense");
}

#[test]
fn engine_reports_packed_macs_for_int8() {
    let float = float_model();
    let images = batch(4, 14);
    let qmodel = QuantizedViT::from_float(&float);
    let dense_baseline = InferenceModel::dense_macs(&qmodel);
    let engine = Engine::builder(qmodel).build();
    let out = engine.infer_batch(&images);
    // Dense int8: every image costs the packed equivalent of the float
    // dense MACs — the ~1.9× DSP-packing claim surfaces in the report.
    for &m in &out.macs {
        let speedup = dense_baseline as f64 / m as f64;
        assert!(
            (speedup - DSP_PACKING_FACTOR).abs() < 1e-3,
            "packed speedup {speedup}"
        );
    }
}
